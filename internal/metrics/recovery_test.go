package metrics

import (
	"math"
	"testing"
)

func TestRecoveryBasic(t *testing.T) {
	r := NewRecoveryTracker(50)
	r.Observe(1, 10)
	r.Observe(2, 12)
	r.Shift(2.5)
	r.Observe(3, 400) // violating after the shift
	r.Observe(4, 300)
	r.Observe(5, 40) // first compliant tick
	r.Observe(6, 20)
	recs := r.Recoveries(10)
	if len(recs) != 1 {
		t.Fatalf("want 1 recovery, got %d", len(recs))
	}
	rec := recs[0]
	if !rec.Recovered || rec.RecoveredAt != 5 || rec.Seconds != 2.5 {
		t.Fatalf("recovery = %+v, want recovered at t=5 after 2.5s", rec)
	}
	mean, n := r.MeanRecovery(10)
	if mean != 2.5 || n != 1 {
		t.Fatalf("MeanRecovery = %v, %d; want 2.5, 1", mean, n)
	}
}

// A shift at tick 0 measures from time zero; an immediately-compliant first
// observation recovers at its own timestamp.
func TestRecoveryShiftAtTickZero(t *testing.T) {
	r := NewRecoveryTracker(50)
	r.Shift(0)
	r.Observe(0, 10)
	recs := r.Recoveries(10)
	if !recs[0].Recovered || recs[0].Seconds != 0 || recs[0].RecoveredAt != 0 {
		t.Fatalf("shift at 0 with compliant t=0 observation: %+v, want 0s recovery", recs[0])
	}

	// Same shape but the signal starts violating: recovery is the first
	// compliant tick's timestamp, measured from zero.
	r2 := NewRecoveryTracker(50)
	r2.Shift(0)
	r2.Observe(0, 500)
	r2.Observe(1, 200)
	r2.Observe(2, 30)
	recs = r2.Recoveries(10)
	if !recs[0].Recovered || recs[0].Seconds != 2 {
		t.Fatalf("shift at 0: %+v, want 2s recovery", recs[0])
	}
}

// A signal that never re-enters the SLO before the horizon reports
// unrecovered, with the full window span as the lower bound — not zero, not
// an infinity that would poison a mean.
func TestRecoveryNeverReentersBeforeHorizon(t *testing.T) {
	r := NewRecoveryTracker(50)
	r.Shift(2)
	r.Observe(3, 400)
	r.Observe(4, 900)
	r.Observe(5, 800)
	recs := r.Recoveries(6)
	rec := recs[0]
	if rec.Recovered {
		t.Fatalf("signal never complied but reported recovered: %+v", rec)
	}
	if rec.Seconds != 4 {
		t.Fatalf("unrecovered Seconds = %v, want window span 4 (horizon 6 - shift 2)", rec.Seconds)
	}
	mean, n := r.MeanRecovery(6)
	if n != 0 || mean != 4 || math.IsInf(mean, 0) || math.IsNaN(mean) {
		t.Fatalf("MeanRecovery = %v, %d; want finite lower bound 4 with 0 recovered", mean, n)
	}
}

// A second shift arriving before the first recovery truncates the first
// shift's window: the first reports unrecovered over its (short) window and
// the second gets its own full measurement, so compliant ticks after the
// second shift are never credited to the first.
func TestRecoverySecondShiftBeforeFirstRecovery(t *testing.T) {
	r := NewRecoveryTracker(50)
	r.Shift(2)
	r.Observe(3, 400)
	r.Observe(4, 300)
	r.Shift(5) // hot set rotates again while still violating
	r.Observe(6, 200)
	r.Observe(7, 30) // compliant — inside shift 2's window only
	recs := r.Recoveries(10)
	if len(recs) != 2 {
		t.Fatalf("want 2 recoveries, got %d", len(recs))
	}
	if recs[0].Recovered {
		t.Fatalf("first shift credited a recovery from after the second shift: %+v", recs[0])
	}
	if recs[0].Seconds != 3 {
		t.Fatalf("first shift window = %v, want truncated span 3 (5-2)", recs[0].Seconds)
	}
	if !recs[1].Recovered || recs[1].Seconds != 2 {
		t.Fatalf("second shift = %+v, want recovery after 2s (t=7)", recs[1])
	}
}

// Compliant observations from before a shift must not count toward it, and
// the boundary observation exactly at the shift instant belongs to the
// shifted window.
func TestRecoveryIgnoresPreShiftObservations(t *testing.T) {
	r := NewRecoveryTracker(50)
	r.Observe(1, 10) // compliant, but before the shift
	r.Shift(2)
	r.Observe(2, 20) // at the shift instant: counts
	recs := r.Recoveries(10)
	if !recs[0].Recovered || recs[0].Seconds != 0 || recs[0].RecoveredAt != 2 {
		t.Fatalf("boundary observation mishandled: %+v", recs[0])
	}
}

// A shift at (or past) the horizon has an empty window: unrecovered, zero
// span, and it must not make Seconds negative.
func TestRecoveryShiftAtHorizon(t *testing.T) {
	r := NewRecoveryTracker(50)
	r.Shift(10)
	r.Observe(9, 10)
	recs := r.Recoveries(10)
	if recs[0].Recovered || recs[0].Seconds != 0 {
		t.Fatalf("shift at horizon: %+v, want empty unrecovered window", recs[0])
	}
}

func TestRecoveryNoShifts(t *testing.T) {
	r := NewRecoveryTracker(50)
	r.Observe(1, 10)
	if recs := r.Recoveries(10); len(recs) != 0 {
		t.Fatalf("no shifts recorded but got %v", recs)
	}
	mean, n := r.MeanRecovery(10)
	if mean != 0 || n != 0 {
		t.Fatalf("MeanRecovery with no shifts = %v, %d; want 0, 0", mean, n)
	}
}
