// Package metrics provides the small statistical building blocks used by
// PLASMA's profiling runtime and by the experiment harnesses: counters,
// windowed rates, exponentially weighted moving averages, and histograms
// with percentile queries.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Counter is a monotonically increasing count with a byte total, used for
// message statistics (count and size per Fig. 3's stat category).
type Counter struct {
	N     int64
	Bytes int64
}

// Add records one observation of size bytes.
func (c *Counter) Add(bytes int64) {
	c.N++
	c.Bytes += bytes
}

// Merge folds other into c.
func (c *Counter) Merge(other Counter) {
	c.N += other.N
	c.Bytes += other.Bytes
}

// Reset zeroes the counter.
func (c *Counter) Reset() { *c = Counter{} }

// EWMA is an exponentially weighted moving average.
type EWMA struct {
	alpha float64
	v     float64
	init  bool
}

// NewEWMA returns an EWMA with smoothing factor alpha in (0, 1].
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("metrics: EWMA alpha %v out of (0,1]", alpha))
	}
	return &EWMA{alpha: alpha}
}

// Observe folds x into the average.
func (e *EWMA) Observe(x float64) {
	if !e.init {
		e.v, e.init = x, true
		return
	}
	e.v = e.alpha*x + (1-e.alpha)*e.v
}

// Value returns the current average (0 before any observation).
func (e *EWMA) Value() float64 { return e.v }

// Histogram collects float64 samples for percentile queries. It is not
// bucketed: experiment sample counts are small enough that exact percentiles
// are affordable and simpler to reason about; FixedHistogram is the
// constant-memory variant for high-volume series.
//
// Sorted state is maintained lazily and incrementally: queries sort only
// the samples appended since the last query and merge them into the sorted
// prefix, so a query burst costs one small tail sort instead of a full
// re-sort per call.
type Histogram struct {
	samples []float64
	nsorted int       // prefix of samples known sorted
	scratch []float64 // reused merge buffer
}

// Observe records one sample.
func (h *Histogram) Observe(x float64) {
	h.samples = append(h.samples, x)
}

// Count reports the number of samples.
func (h *Histogram) Count() int { return len(h.samples) }

// Mean reports the arithmetic mean (0 if empty).
func (h *Histogram) Mean() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	var s float64
	for _, x := range h.samples {
		s += x
	}
	return s / float64(len(h.samples))
}

// Min reports the smallest sample (0 if empty).
func (h *Histogram) Min() float64 {
	h.ensureSorted()
	if len(h.samples) == 0 {
		return 0
	}
	return h.samples[0]
}

// Max reports the largest sample (0 if empty).
func (h *Histogram) Max() float64 {
	h.ensureSorted()
	if len(h.samples) == 0 {
		return 0
	}
	return h.samples[len(h.samples)-1]
}

// Percentile reports the p-th percentile using linear interpolation
// between closest ranks. p outside [0,100] is clamped to the nearest
// bound; an empty histogram (or a NaN p) reports NaN.
func (h *Histogram) Percentile(p float64) float64 {
	h.ensureSorted()
	n := len(h.samples)
	if n == 0 || math.IsNaN(p) {
		return math.NaN()
	}
	if p <= 0 {
		return h.samples[0]
	}
	if p >= 100 {
		return h.samples[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return h.samples[lo]
	}
	frac := rank - float64(lo)
	return h.samples[lo]*(1-frac) + h.samples[hi]*frac
}

// Stddev reports the population standard deviation (0 if fewer than 2).
func (h *Histogram) Stddev() float64 {
	n := len(h.samples)
	if n < 2 {
		return 0
	}
	m := h.Mean()
	var ss float64
	for _, x := range h.samples {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Reset discards all samples.
func (h *Histogram) Reset() {
	h.samples = h.samples[:0]
	h.nsorted = 0
}

// ensureSorted brings the whole sample slice into sorted order by sorting
// the unsorted tail and merging it into the already-sorted prefix.
func (h *Histogram) ensureSorted() {
	n := len(h.samples)
	if h.nsorted >= n {
		return
	}
	tail := h.samples[h.nsorted:]
	sort.Float64s(tail)
	// Skip the merge when the tail already extends the prefix.
	if h.nsorted > 0 && tail[0] < h.samples[h.nsorted-1] {
		h.mergeTail()
	}
	h.nsorted = n
}

// mergeTail merges samples[:nsorted] and samples[nsorted:] (both sorted)
// through a reused scratch buffer.
func (h *Histogram) mergeTail() {
	a := h.samples[:h.nsorted]
	b := h.samples[h.nsorted:]
	if cap(h.scratch) < len(h.samples) {
		h.scratch = make([]float64, len(h.samples))
	}
	out := h.scratch[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if b[j] < a[i] {
			out = append(out, b[j])
			j++
		} else {
			out = append(out, a[i])
			i++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	copy(h.samples, out)
}

// Series is an append-only (x, y) trace used to reproduce the paper's
// figures (latency over time, CPU% over redistributions, ...).
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends one point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len reports the number of points.
func (s *Series) Len() int { return len(s.X) }

// MeanY reports the mean of Y (0 if empty).
func (s *Series) MeanY() float64 {
	if len(s.Y) == 0 {
		return 0
	}
	var sum float64
	for _, y := range s.Y {
		sum += y
	}
	return sum / float64(len(s.Y))
}

// MaxY reports the maximum of Y (0 if empty).
func (s *Series) MaxY() float64 {
	m := math.Inf(-1)
	for _, y := range s.Y {
		if y > m {
			m = y
		}
	}
	if math.IsInf(m, -1) {
		return 0
	}
	return m
}

// TailMeanY reports the mean of the last frac (0,1] of the points, used to
// summarize "after convergence" behavior. The tail length truncates toward
// zero but always holds at least one sample, so small n/frac combinations
// (n=3, frac=0.1) average the final point instead of dividing by zero.
func (s *Series) TailMeanY(frac float64) float64 {
	n := len(s.Y)
	if n == 0 {
		return 0
	}
	tail := int(float64(n) * frac)
	if tail < 1 {
		tail = 1
	}
	if tail > n {
		tail = n
	}
	var sum float64
	for _, y := range s.Y[n-tail:] {
		sum += y
	}
	return sum / float64(tail)
}

// Imbalance reports (max-min)/mean for a set of values; 0 for empty input
// or zero mean. It quantifies load spread across servers.
func Imbalance(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	min, max, sum := math.Inf(1), math.Inf(-1), 0.0
	for _, v := range values {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
		sum += v
	}
	mean := sum / float64(len(values))
	if mean == 0 {
		return 0
	}
	return (max - min) / mean
}
