package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFixedHistogramEmpty(t *testing.T) {
	h := NewFixedHistogram(0, 100, 10)
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty FixedHistogram should report zeros")
	}
	if got := h.Percentile(50); !math.IsNaN(got) {
		t.Fatalf("empty Percentile(50) = %v, want NaN", got)
	}
}

func TestFixedHistogramBadShapePanics(t *testing.T) {
	for _, c := range []struct {
		lo, hi  float64
		buckets int
	}{{0, 100, 0}, {0, 100, -1}, {5, 5, 10}, {10, 5, 10}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewFixedHistogram(%v, %v, %d) did not panic", c.lo, c.hi, c.buckets)
				}
			}()
			NewFixedHistogram(c.lo, c.hi, c.buckets)
		}()
	}
}

func TestFixedHistogramExactStats(t *testing.T) {
	h := NewFixedHistogram(0, 10, 10)
	for _, x := range []float64{-5, 0.5, 2.5, 7.5, 42} { // under + in-range + over
		h.Observe(x)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got := h.Min(); got != -5 {
		t.Fatalf("min = %v, want -5 (exact across underflow)", got)
	}
	if got := h.Max(); got != 42 {
		t.Fatalf("max = %v, want 42 (exact across overflow)", got)
	}
	if got, want := h.Mean(), (-5+0.5+2.5+7.5+42)/5.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("mean = %v, want %v", got, want)
	}
	h.Observe(math.NaN())
	if h.Count() != 5 {
		t.Fatal("NaN sample was not dropped")
	}
}

// Percentile error is bounded by one bucket width against the exact
// histogram, and p0/p100 are exact.
func TestFixedHistogramPercentileWithinBucketWidth(t *testing.T) {
	const lo, hi, buckets = 0.0, 100.0, 200
	width := (hi - lo) / buckets
	rng := rand.New(rand.NewSource(11))
	fh := NewFixedHistogram(lo, hi, buckets)
	var exact Histogram
	for i := 0; i < 50000; i++ {
		x := rng.Float64() * 100
		fh.Observe(x)
		exact.Observe(x)
	}
	for p := 0.0; p <= 100; p += 2.5 {
		got, want := fh.Percentile(p), exact.Percentile(p)
		if math.Abs(got-want) > width {
			t.Fatalf("p%.1f: fixed %v vs exact %v differs by more than a bucket width %v", p, got, want, width)
		}
	}
	if fh.Percentile(0) != exact.Percentile(0) || fh.Percentile(100) != exact.Percentile(100) {
		t.Fatal("p0/p100 must be exact (tracked min/max)")
	}
}

func TestFixedHistogramMerge(t *testing.T) {
	a := NewFixedHistogram(0, 10, 5)
	b := NewFixedHistogram(0, 10, 5)
	for i := 0; i < 10; i++ {
		a.Observe(float64(i % 5))
		b.Observe(float64(5 + i%5))
	}
	a.Merge(b)
	if a.Count() != 20 {
		t.Fatalf("merged count = %d, want 20", a.Count())
	}
	if a.Min() != 0 || a.Max() != 9 {
		t.Fatalf("merged min/max = %v/%v, want 0/9", a.Min(), a.Max())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("merging mismatched layouts did not panic")
			}
		}()
		a.Merge(NewFixedHistogram(0, 10, 7))
	}()
}

func TestFixedHistogramReset(t *testing.T) {
	h := NewFixedHistogram(0, 10, 5)
	h.Observe(3)
	h.Observe(12)
	h.Reset()
	if h.Count() != 0 || !math.IsNaN(h.Percentile(50)) {
		t.Fatal("reset histogram should be empty")
	}
	h.Observe(4)
	if got := h.Percentile(50); got != 4 {
		t.Fatalf("post-reset p50 = %v, want 4", got)
	}
}

// Property: Percentile is monotone in p and bounded by [Min, Max], same
// contract as the exact Histogram.
func TestPropertyFixedPercentileMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		h := NewFixedHistogram(-100, 100, 64)
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			h.Observe(math.Mod(x, 500)) // keep some mass outside [-100,100)
		}
		if h.Count() == 0 {
			return true
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := h.Percentile(p)
			if v < prev || v < h.Min() || v > h.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Observe on the fixed-bucket variant must not allocate — that is its
// reason to exist for high-volume series.
func TestFixedHistogramObserveAllocFree(t *testing.T) {
	h := NewFixedHistogram(0, 100, 50)
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 1000; i++ {
			h.Observe(float64(i % 137))
		}
	})
	if allocs > 0 {
		t.Fatalf("Observe allocated %.1f times per run; want 0", allocs)
	}
}
