package metrics

// RecoveryTracker measures recovery time after workload shifts: feed it the
// per-tick value of a latency signal (e.g. the p99 window latency of a
// streaming job) plus the instants the workload shifted (a hot-key rotation,
// a spike ending), and it reports, per shift, how long the signal took to
// re-enter the SLO — the first observation at or after the shift whose value
// is back at or below the threshold.
//
// Elasticutor frames exactly this as the metric that separates executor-level
// key repartitioning from operator-level scaling: both eventually rebalance,
// but recovery *time* after a skew shift differs by an order of magnitude.
//
// Semantics, including the edge cases pinned by tests:
//
//   - A shift's measurement window runs from the shift instant to the next
//     shift (or the finalize horizon). A second shift before the first
//     recovery truncates the first window: the first shift reports
//     unrecovered with its window span as a lower bound.
//   - A shift at tick 0 is legal; if the very first observation is already
//     compliant, recovery time is that observation's timestamp.
//   - If no compliant observation lands inside the window, the shift is
//     unrecovered: Seconds is the full window span (a lower bound, flagged
//     by Recovered=false) rather than an arbitrary sentinel.
//
// Times are plain float64 seconds, like SLOTracker, so the package stays
// free of simulator imports.
type RecoveryTracker struct {
	SLO float64

	shifts []float64
	obs    []recObs
}

type recObs struct{ t, v float64 }

// Recovery is one shift's measured outcome.
type Recovery struct {
	ShiftAt float64
	// RecoveredAt is the timestamp of the first compliant observation at or
	// after the shift (meaningless when !Recovered).
	RecoveredAt float64
	// Seconds is RecoveredAt-ShiftAt when recovered; otherwise the span of
	// the measurement window (a lower bound on the true recovery time).
	Seconds   float64
	Recovered bool
}

// NewRecoveryTracker creates a tracker for the given SLO threshold: values
// at or below it count as compliant.
func NewRecoveryTracker(slo float64) *RecoveryTracker {
	return &RecoveryTracker{SLO: slo}
}

// Shift records a workload shift at time t. Shifts must be recorded in
// nondecreasing time order.
func (r *RecoveryTracker) Shift(t float64) { r.shifts = append(r.shifts, t) }

// Observe records the signal's value at time t. Observations must be fed in
// nondecreasing time order; they may be interleaved with Shift calls or all
// appended after the run (the tracker only orders by timestamp).
func (r *RecoveryTracker) Observe(t, v float64) { r.obs = append(r.obs, recObs{t, v}) }

// Recoveries evaluates every recorded shift against the observations, with
// measurement windows closed at horizon (the end of the run). Shifts at or
// after the horizon report an empty, unrecovered window.
func (r *RecoveryTracker) Recoveries(horizon float64) []Recovery {
	out := make([]Recovery, len(r.shifts))
	for i, s := range r.shifts {
		end := horizon
		if i+1 < len(r.shifts) && r.shifts[i+1] < end {
			end = r.shifts[i+1]
		}
		rec := Recovery{ShiftAt: s, Seconds: end - s}
		if rec.Seconds < 0 {
			rec.Seconds = 0
		}
		for _, o := range r.obs {
			if o.t < s || o.t >= end {
				continue
			}
			if o.v <= r.SLO {
				rec.Recovered = true
				rec.RecoveredAt = o.t
				rec.Seconds = o.t - s
				break
			}
		}
		out[i] = rec
	}
	return out
}

// MeanRecovery aggregates Recoveries: the mean Seconds across all shifts
// (unrecovered shifts contribute their window span, keeping the mean a
// lower bound) and how many of them actually recovered. A tracker with no
// shifts reports (0, 0).
func (r *RecoveryTracker) MeanRecovery(horizon float64) (mean float64, recovered int) {
	recs := r.Recoveries(horizon)
	if len(recs) == 0 {
		return 0, 0
	}
	var sum float64
	for _, rec := range recs {
		sum += rec.Seconds
		if rec.Recovered {
			recovered++
		}
	}
	return sum / float64(len(recs)), recovered
}
