package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// refKernel reimplements the pre-overhaul event queue — a container/heap of
// boxed *refEvent — with identical (at, seq) semantics. The differential
// tests drive it and the 4-ary value heap with the same schedule and demand
// identical fire orders; the alloc test pins the boxed implementation's
// per-event allocation as the ceiling the new queue must beat.
type refEvent struct {
	at  Time
	seq uint64
	fn  func()
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(*refEvent)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

type refKernel struct {
	now    Time
	seq    uint64
	events refHeap
}

func (k *refKernel) After(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	t := k.now + Time(d)
	if t < k.now {
		t = k.now
	}
	k.seq++
	heap.Push(&k.events, &refEvent{at: t, seq: k.seq, fn: fn})
}

func (k *refKernel) RunUntilIdle() {
	for len(k.events) > 0 {
		e := heap.Pop(&k.events).(*refEvent)
		k.now = e.at
		e.fn()
	}
}

// scheduler abstracts the two kernels so one driver exercises both.
type scheduler interface {
	After(d Duration, fn func())
	RunUntilIdle()
}

// driveSchedule runs a deterministic workload on s: an initial burst of
// events whose callbacks recursively schedule children according to the
// precomputed plan. It returns the order in which event ids fired.
type schedulePlan struct {
	initial []Duration   // delays of root events
	childOf [][]Duration // childOf[id]: delays of events scheduled when id fires
}

func driveSchedule(s scheduler, plan schedulePlan) []int {
	var order []int
	next := len(plan.initial)
	var fire func(id int) func()
	fire = func(id int) func() {
		return func() {
			order = append(order, id)
			if id < len(plan.childOf) {
				for _, d := range plan.childOf[id] {
					child := next
					next++
					s.After(d, fire(child))
				}
			}
		}
	}
	for id, d := range plan.initial {
		s.After(d, fire(id))
	}
	s.RunUntilIdle()
	return order
}

// makePlan builds a randomized schedule with heavy same-instant collisions
// (small delay range) and nested scheduling, all decided up front so both
// kernels see the identical workload.
func makePlan(rng *rand.Rand, roots int) schedulePlan {
	p := schedulePlan{initial: make([]Duration, roots)}
	for i := range p.initial {
		// Delay range of 17µs over hundreds of events forces many (at)
		// ties, so the seq tiebreak is what the test really pins down.
		p.initial[i] = Duration(rng.Int63n(17))
	}
	total := roots * 3
	p.childOf = make([][]Duration, total)
	for i := 0; i < total; i++ {
		if rng.Intn(3) == 0 {
			kids := make([]Duration, rng.Intn(3))
			for j := range kids {
				kids[j] = Duration(rng.Int63n(11))
			}
			p.childOf[i] = kids
		}
	}
	return p
}

// TestDifferentialFireOrder checks the 4-ary indexed value heap fires
// events in exactly the (at, seq) order of the old container/heap kernel,
// across many seeded random schedules.
func TestDifferentialFireOrder(t *testing.T) {
	for trial := 0; trial < 60; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		plan := makePlan(rng, 150+rng.Intn(350))
		got := driveSchedule(New(1), plan)
		want := driveSchedule(&refKernel{}, plan)
		if len(got) != len(want) {
			t.Fatalf("trial %d: fired %d events, reference fired %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: fire order diverges at event %d: got id %d, reference id %d",
					trial, i, got[i], want[i])
			}
		}
	}
}

// TestDifferentialWithTimers mixes Timer traffic (Reset/Stop churn) into a
// plain event stream and checks the plain events still fire in reference
// order — the indexed-slot bookkeeping must not perturb heap ordering.
func TestDifferentialWithTimers(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(7000 + trial)))
		plan := makePlan(rng, 200)
		want := driveSchedule(&refKernel{}, plan)

		k := New(1)
		// Interleave timers that fire between/among the plan's events but
		// record nothing; half get stopped, some get reset.
		var timers []*Timer
		for i := 0; i < 50; i++ {
			timers = append(timers, k.AfterFunc(Duration(rng.Int63n(17)), func() {}))
		}
		for i, tm := range timers {
			switch i % 3 {
			case 0:
				tm.Stop()
			case 1:
				tm.Reset(Duration(rng.Int63n(17)))
			}
		}
		got := driveSchedule(k, plan)
		if len(got) != len(want) {
			t.Fatalf("trial %d: fired %d plan events, reference fired %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: fire order diverges at %d: got %d, want %d", trial, i, got[i], want[i])
			}
		}
	}
}

// TestHeapAllocsReduced asserts the value heap schedules and fires events
// with no more allocations than the boxed reference — and in absolute terms
// near zero amortized allocs per event (slice growth only).
func TestHeapAllocsReduced(t *testing.T) {
	const events = 2000
	fn := func() {}

	k := New(1)
	newAllocs := testing.AllocsPerRun(20, func() {
		for i := 0; i < events; i++ {
			k.After(Duration(i%97), fn)
		}
		k.RunUntilIdle()
	})

	rk := &refKernel{}
	refAllocs := testing.AllocsPerRun(20, func() {
		for i := 0; i < events; i++ {
			rk.After(Duration(i%97), fn)
		}
		rk.RunUntilIdle()
	})

	if newAllocs > refAllocs {
		t.Fatalf("value heap allocates more than boxed reference: %.1f > %.1f allocs per %d events",
			newAllocs, refAllocs, events)
	}
	// The boxed kernel allocated ~1 event box per event; the value heap
	// must be at least 10x better amortized.
	if newAllocs > events/10 {
		t.Fatalf("value heap allocs = %.1f per %d events; want near zero", newAllocs, events)
	}
}

// BenchmarkKernelSchedule measures raw schedule+fire throughput: the
// headline number behind BENCH_*.json's events_per_sec.
func BenchmarkKernelSchedule(b *testing.B) {
	b.ReportAllocs()
	fn := func() {}
	k := New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.After(Duration(i%977), fn)
		if i%1024 == 1023 {
			k.RunUntilIdle()
		}
	}
	k.RunUntilIdle()
}

// BenchmarkKernelScheduleBoxedRef is the same workload on the pre-overhaul
// boxed container/heap queue, kept for comparison.
func BenchmarkKernelScheduleBoxedRef(b *testing.B) {
	b.ReportAllocs()
	fn := func() {}
	k := &refKernel{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.After(Duration(i%977), fn)
		if i%1024 == 1023 {
			k.RunUntilIdle()
		}
	}
	k.RunUntilIdle()
}

// BenchmarkEveryTick measures periodic-timer ticks (the cluster/EMR tick
// loop shape): each tick must be a single in-place heap push.
func BenchmarkEveryTick(b *testing.B) {
	b.ReportAllocs()
	k := New(1)
	n := 0
	k.Every(Millisecond, func() bool {
		n++
		return n < b.N
	})
	k.RunUntilIdle()
}
