package sim

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// shardLog captures one deterministic execution trace of a homed
// workload: a per-home event log (owned by the home, so race-free at any
// shard count) plus a single global log fed only by Defer and global
// events (so it is race-free too).
type shardLog struct {
	perHome [][]string
	global  []string
}

// runHomedWorkload drives an identical seeded workload on a kernel with
// the given shard count and returns its logs and stats. All randomness
// is drawn up front into a plan, because handlers must not touch the
// kernel RNG from worker context.
func runHomedWorkload(t *testing.T, seed int64, shards, homes, kicks int) (shardLog, Stats, Time) {
	t.Helper()
	const lookahead = 100 * Microsecond

	rng := rand.New(rand.NewSource(seed))
	type kick struct {
		at    Time
		home  int32
		depth int
		span  Duration
	}
	plan := make([]kick, kicks)
	for i := range plan {
		plan[i] = kick{
			at:    Time(rng.Intn(2000)) * Time(Microsecond),
			home:  int32(rng.Intn(homes)),
			depth: 2 + rng.Intn(3),
			span:  Duration(rng.Intn(50)) * Microsecond,
		}
	}

	k := New(seed)
	k.SetShards(shards)
	k.SetLookahead(lookahead)
	lg := shardLog{perHome: make([][]string, homes)}
	envs := make([]*Env, homes)
	for h := range envs {
		envs[h] = k.Env(int32(h))
	}

	// Each homed event logs to its own home, spawns a same-home
	// follow-up under the lookahead, a cross-home hop (floored to the
	// lookahead), and defers one globally ordered record.
	var hop func(home int32, depth int, span Duration, tag string)
	hop = func(home int32, depth int, span Duration, tag string) {
		e := envs[home]
		lg.perHome[home] = append(lg.perHome[home], fmt.Sprintf("%s@%d", tag, e.Now()))
		e.Defer(func() {
			lg.global = append(lg.global, fmt.Sprintf("%s:h%d@%d", tag, home, e.k.now))
		})
		if depth == 0 {
			return
		}
		e.Schedule(home, span, func() { hop(home, depth-1, span, tag+"s") })
		next := (home + 1) % int32(len(envs))
		e.Schedule(next, 0, func() { hop(next, depth-1, span, tag+"x") })
		if depth%2 == 0 {
			e.Schedule(GlobalHome, span, func() {
				lg.global = append(lg.global, fmt.Sprintf("%s:g@%d", tag, k.now))
			})
		}
	}
	for i, p := range plan {
		p := p
		tag := fmt.Sprintf("k%d", i)
		k.At(p.at, func() {
			envs[p.home].Schedule(p.home, 0, func() { hop(p.home, p.depth, p.span, tag) })
		})
	}
	k.RunUntilIdle()
	return lg, k.Stats(), k.now
}

// TestShardDifferentialRandomized is the kernel-level equivalence proof:
// the same seeded homed workload at 1, 2, 3, and 4 shards produces
// identical per-home execution logs, an identical globally ordered
// deferred log, identical fired counts, and an identical final clock.
func TestShardDifferentialRandomized(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		seed := int64(1000 + trial)
		refLog, refStats, refNow := runHomedWorkload(t, seed, 1, 5, 30)
		for _, shards := range []int{2, 3, 4} {
			lg, st, now := runHomedWorkload(t, seed, shards, 5, 30)
			if !reflect.DeepEqual(lg, refLog) {
				t.Fatalf("seed %d: shards=%d log diverged from sequential\nseq:  %+v\nshard:%+v", seed, shards, refLog, lg)
			}
			if st.Fired != refStats.Fired {
				t.Fatalf("seed %d: shards=%d fired %d, sequential fired %d", seed, shards, st.Fired, refStats.Fired)
			}
			if now != refNow {
				t.Fatalf("seed %d: shards=%d clock %d, sequential clock %d", seed, shards, now, refNow)
			}
		}
	}
}

// TestSameInstantContract pins the (at, home, cnt) contract end to end:
// at one instant, global events fire first in scheduling order, then
// homes in ascending id order, each home in its own scheduling order —
// identically at every shard count.
func TestSameInstantContract(t *testing.T) {
	run := func(shards int) []string {
		k := New(7)
		k.SetShards(shards)
		k.SetLookahead(50 * Microsecond)
		e2 := k.Env(2)
		e0 := k.Env(0)
		var log []string
		mark := func(e *Env, tag string) func() {
			return func() { e.Defer(func() { log = append(log, tag) }) }
		}
		const at = Time(100)
		// Scheduled deliberately out of key order.
		e2.Schedule(2, Duration(at), mark(e2, "h2-a"))
		k.At(at, func() { log = append(log, "g-a") })
		e0.Schedule(0, Duration(at), mark(e0, "h0-a"))
		e2.Schedule(2, Duration(at), mark(e2, "h2-b"))
		k.At(at, func() { log = append(log, "g-b") })
		e0.Schedule(0, Duration(at), mark(e0, "h0-b"))
		k.RunUntilIdle()
		return log
	}
	want := []string{"g-a", "g-b", "h0-a", "h0-b", "h2-a", "h2-b"}
	for _, shards := range []int{1, 2, 4} {
		if got := run(shards); !reflect.DeepEqual(got, want) {
			t.Fatalf("shards=%d: same-instant order = %v, want %v", shards, got, want)
		}
	}
}

// TestTimerResetSameInstantIsFreshScheduling pins the satellite bugfix
// contract: Reset on a pending timer assigns a fresh counter, so a Reset
// to the current instant fires after events already queued for that
// instant — byte-for-byte the order a Stop + new AfterFunc produces.
func TestTimerResetSameInstantIsFreshScheduling(t *testing.T) {
	viaReset := func() []string {
		k := New(3)
		var log []string
		tm := k.AfterFunc(0, func() { log = append(log, "T") })
		k.After(0, func() { log = append(log, "A") })
		tm.Reset(0) // re-stamp: T must now fire after A and before B
		k.After(0, func() { log = append(log, "B") })
		k.RunUntilIdle()
		return log
	}
	viaStopStart := func() []string {
		k := New(3)
		var log []string
		tm := k.AfterFunc(0, func() { log = append(log, "T") })
		k.After(0, func() { log = append(log, "A") })
		tm.Stop()
		k.AfterFunc(0, func() { log = append(log, "T") })
		k.After(0, func() { log = append(log, "B") })
		k.RunUntilIdle()
		return log
	}
	want := []string{"A", "T", "B"}
	if got := viaReset(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Reset-to-now order = %v, want %v (fresh scheduling)", got, want)
	}
	if got := viaStopStart(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Stop+AfterFunc order = %v, want %v", got, want)
	}
}

// TestTimerResetDifferentialAgainstStopStart runs a randomized mix of
// Reset-in-place and Stop+reschedule under same-instant contention and
// checks both strategies produce the same fire order — the differential
// regression for the ordering contract the sharded merge reproduces.
func TestTimerResetDifferentialAgainstStopStart(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		seed := int64(500 + trial)
		run := func(useReset bool) []string {
			rng := rand.New(rand.NewSource(seed))
			k := New(seed)
			var log []string
			type step struct {
				d     Duration
				plain bool
			}
			steps := make([]step, 30)
			for i := range steps {
				steps[i] = step{d: Duration(rng.Intn(3)), plain: rng.Intn(2) == 0}
			}
			tm := k.AfterFunc(1, func() { log = append(log, "tick") })
			for i, s := range steps {
				i := i
				if s.plain {
					k.After(s.d, func() { log = append(log, fmt.Sprintf("p%d", i)) })
					continue
				}
				if useReset {
					tm.Reset(s.d)
				} else {
					tm.Stop()
					tm = k.AfterFunc(s.d, func() { log = append(log, "tick") })
				}
			}
			k.RunUntilIdle()
			return log
		}
		if a, b := run(true), run(false); !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: Reset order %v != Stop+AfterFunc order %v", seed, a, b)
		}
	}
}

// TestWorkerContextGuards verifies the kernel's global-phase APIs fail
// deterministically (panic) when touched from a shard worker instead of
// racing.
func TestWorkerContextGuards(t *testing.T) {
	cases := []struct {
		name string
		op   func(k *Kernel)
	}{
		{"Now", func(k *Kernel) { k.Now() }},
		{"Rand", func(k *Kernel) { k.Rand() }},
		{"After", func(k *Kernel) { k.After(0, func() {}) }},
		{"AfterFunc", func(k *Kernel) { k.AfterFunc(0, func() {}) }},
		{"Stop", func(k *Kernel) { k.Stop() }},
		{"Env", func(k *Kernel) { k.Env(0) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k := New(1)
			k.SetShards(2)
			k.SetLookahead(10)
			e := k.Env(0)
			e.Schedule(0, 5, func() { tc.op(k) })
			defer func() {
				if recover() == nil {
					t.Fatalf("Kernel.%s from worker context did not panic", tc.name)
				}
			}()
			k.RunUntilIdle()
		})
	}
}

// TestShardModeMisuse pins the configuration guards: Step on a sharded
// kernel, SetShards after an Env exists, and a sharded run without a
// lookahead all panic.
func TestShardModeMisuse(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	expectPanic("Step on sharded kernel", func() {
		k := New(1)
		k.SetShards(2)
		k.Step()
	})
	expectPanic("SetShards after Env", func() {
		k := New(1)
		k.Env(0)
		k.SetShards(2)
	})
	expectPanic("sharded run without lookahead", func() {
		k := New(1)
		k.SetShards(2)
		k.Env(0).Schedule(0, 1, func() {})
		k.RunUntilIdle()
	})
}

// TestShardRunDeadline checks Run(until) clock semantics match the
// sequential kernel on a sharded one: the clock lands exactly on the
// deadline, events beyond it stay queued, and a later Run picks them up.
func TestShardRunDeadline(t *testing.T) {
	k := New(9)
	k.SetShards(2)
	k.SetLookahead(10)
	e := k.Env(1)
	var fired []Time
	for _, d := range []Duration{5, 15, 25, 95, 105} {
		d := d
		e.Schedule(1, d, func() { fired = append(fired, e.Now()) })
	}
	k.Run(100)
	if k.now != 100 {
		t.Fatalf("clock after Run(100) = %d, want 100", k.now)
	}
	if len(fired) != 4 {
		t.Fatalf("fired %d events before deadline, want 4 (%v)", len(fired), fired)
	}
	if k.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", k.Pending())
	}
	k.Run(200)
	if len(fired) != 5 || fired[4] != 105 {
		t.Fatalf("second Run fired %v, want final event at 105", fired)
	}
}
