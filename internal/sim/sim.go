// Package sim provides a deterministic discrete-event simulation kernel.
//
// All of PLASMA's experiments run on virtual time. Every event carries an
// order key (at, depth, home, cnt) — firing time, same-instant causal
// depth, scheduling home, per-home scheduling counter — so two events
// scheduled for the same instant fire in a single well-defined order and
// every run is reproducible bit-for-bit from a single seed. The
// same-instant contract is:
//
//   - an event scheduled at its parent's instant (from inside an event
//     callback, for the same virtual time) fires after every event of
//     the parent's own causal depth — children never overtake their
//     parent's cohort;
//   - at equal depth, global events (plain After/At/AfterFunc, home =
//     GlobalHome) fire before homed events (Env.Schedule);
//   - among homed events of equal depth, lower home ids fire first;
//   - within one home at equal depth, events fire in scheduling order;
//   - Timer.Reset is a fresh scheduling: resetting a pending timer to the
//     current instant moves it after previously queued same-instant
//     events, exactly as if it had been stopped and re-scheduled.
//
// The key is independent of wall-clock execution order, which is what
// lets the sharded kernel (see shard.go) run machine-homed events on
// several goroutines inside a conservative lookahead window and still
// produce byte-identical runs: each home's counter is bumped only by that
// home's own execution (or by single-threaded global-phase code), so the
// key multiset — and therefore every heap's pop order — is the same at
// any shard count.
//
// The event queue is a value-typed 4-ary indexed heap (see queue.go):
// scheduling an event is an inline slice append, not a boxed allocation,
// and periodic work can hold a reusable Timer (AfterFunc/Reset) so tick
// loops run allocation-free.
package sim

import (
	"fmt"

	//lint:ignore DET002 the kernel owns the seeded RNG every component draws from
	"math/rand"
)

// Time is an instant in virtual time, in microseconds since simulation start.
type Time int64

// Duration is a span of virtual time in microseconds.
type Duration int64

// Common durations, mirroring time.Duration conventions.
const (
	Microsecond Duration = 1
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
)

// Millis builds a Duration from a (possibly fractional) millisecond count.
func Millis(ms float64) Duration { return Duration(ms * float64(Millisecond)) }

// Micros builds a Duration from a microsecond count.
func Micros(us float64) Duration { return Duration(us) }

// Seconds reports d as a float64 number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Seconds reports t as a float64 number of seconds since simulation start.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

func (d Duration) String() string {
	switch {
	case d >= Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(d)/float64(Millisecond))
	default:
		return fmt.Sprintf("%dµs", int64(d))
	}
}

// Kernel is a discrete-event simulator. The zero value is not usable; create
// one with New.
//
// A kernel is sequential by default. SetShards(n) with n > 1 partitions
// homed events (Env.Schedule) across n shards that drain concurrently
// inside conservative time windows; see shard.go. All Kernel methods are
// global-phase APIs: calling them from inside a shard worker (an event
// delivered to a home while a window is open) panics, which makes any
// unsafe use fail deterministically instead of racing.
type Kernel struct {
	now Time
	q   eventQueue // global-destination events; all events when sequential
	rng *rand.Rand

	// homeCnt[h+1] is the scheduling counter for home h; homeCnt[0] is
	// the global counter (home = GlobalHome). During a window each
	// element is bumped only by its owner shard, so no two goroutines
	// touch the same element. The slice itself grows only in Env, which
	// is a global-phase API.
	homeCnt []uint64

	nshards   int // 0 or 1 = sequential
	lookahead Duration
	shards    []*kshard
	envs      []*Env
	active    []*kshard  // scratch: shards participating in the open window
	defBuf    []deferred // scratch: merged deferred side effects
	inWindow  bool

	// Executing-event context for same-instant depth stamping: while a
	// global-queue event (or a replayed deferred record) runs, children
	// scheduled at the same instant get curDepth + 1.
	executing bool
	curAt     Time
	curDepth  int32

	// Stopped is set by Stop; Run returns once it is observed.
	stopped bool

	fired uint64 // events fired since creation (shard counts folded in at barriers)
	peak  int    // maximum global-queue depth observed
}

// New returns a kernel whose random stream is derived from seed.
func New(seed int64) *Kernel {
	return &Kernel{
		rng:     rand.New(rand.NewSource(seed)),
		homeCnt: make([]uint64, 1),
	}
}

// guard panics when a global-phase API is entered from a shard worker.
func (k *Kernel) guard(op string) {
	if k.inWindow {
		panic("sim: Kernel." + op + " called from a shard worker; use the Env API (or Env.Defer) from homed events")
	}
}

// childDepth reports the causal depth of an event scheduled for time at
// from the current context: one deeper than the executing event when it
// targets the same instant, zero otherwise.
func (k *Kernel) childDepth(at Time) int32 {
	if k.executing && at == k.curAt {
		return k.curDepth + 1
	}
	return 0
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time {
	k.guard("Now")
	return k.now
}

// Rand exposes the kernel's deterministic random stream. The stream is a
// global-phase resource: drawing from it inside a shard worker would make
// the draw order depend on goroutine interleaving, so that panics.
func (k *Kernel) Rand() *rand.Rand {
	k.guard("Rand")
	return k.rng
}

// After schedules fn to run d from now. Negative delays fire immediately.
func (k *Kernel) After(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	k.At(k.now+Time(d), fn)
}

// At schedules fn at absolute virtual time t (clamped to now). The event
// is global: it fires before any same-instant homed event and always runs
// single-threaded, between windows when the kernel is sharded.
func (k *Kernel) At(t Time, fn func()) {
	k.guard("At")
	if t < k.now {
		t = k.now
	}
	k.homeCnt[0]++
	k.q.push(event{at: t, depth: k.childDepth(t), home: GlobalHome, cnt: k.homeCnt[0], dst: GlobalHome, tid: noTimer, fn: fn})
	if n := k.q.len(); n > k.peak {
		k.peak = n
	}
}

// Timer is a reusable scheduled callback created by AfterFunc. Unlike a
// plain After event, a Timer occupies one slot in the kernel for its whole
// life: Reset re-queues the same slot and Stop cancels it. A timer that
// fires without being re-armed by Reset — from inside its own callback —
// releases its slot automatically; after that, Stop and Reset on the stale
// handle are no-ops returning false.
//
// Timers are global events; like all global-phase APIs they must not be
// touched from a shard worker.
type Timer struct {
	k   *Kernel
	id  int32
	gen uint32
}

// AfterFunc schedules fn to run d from now and returns a Timer that can
// reschedule (Reset) or cancel (Stop) it. Tick loops that re-arm the timer
// from inside fn schedule each subsequent fire without any allocation,
// which is how Every and the cluster/EMR tick loops run.
func (k *Kernel) AfterFunc(d Duration, fn func()) *Timer {
	k.guard("AfterFunc")
	if d < 0 {
		d = 0
	}
	id := k.q.allocSlot(fn)
	t := &Timer{k: k, id: id, gen: k.q.slots[id].gen}
	k.scheduleTimer(id, k.now+Time(d))
	return t
}

func (k *Kernel) scheduleTimer(id int32, at Time) {
	if at < k.now {
		at = k.now
	}
	k.homeCnt[0]++
	k.q.push(event{at: at, depth: k.childDepth(at), home: GlobalHome, cnt: k.homeCnt[0], dst: GlobalHome, tid: id})
	if n := k.q.len(); n > k.peak {
		k.peak = n
	}
}

func (t *Timer) live() bool {
	return t != nil && t.k != nil && t.k.q.slots[t.id].gen == t.gen
}

// Stop cancels the timer and releases its slot. It reports whether a
// pending fire was dequeued; false means the timer already fired (and was
// not re-armed) or was already stopped.
func (t *Timer) Stop() bool {
	if !t.live() {
		return false
	}
	t.k.guard("Timer.Stop")
	s := &t.k.q.slots[t.id]
	pending := s.pos != noTimer
	if pending {
		t.k.q.remove(int(s.pos))
	}
	t.k.q.freeSlot(t.id)
	return pending
}

// Reset reschedules the timer to fire d from now (negative d fires
// immediately). While the timer is pending its queued event is moved in
// place; from inside the callback it re-arms the slot for another fire.
// Reset reports false on a released timer (already fired without re-arm,
// or stopped).
//
// Reset is a fresh scheduling with respect to same-instant ordering: the
// moved event takes a fresh counter value, so a Reset to the current
// instant fires after events that were already queued for that instant —
// exactly as if the timer had been stopped and scheduled anew. This is
// the contract the sharded kernel's merge order reproduces, and the
// differential tests in sim_test.go pin it.
func (t *Timer) Reset(d Duration) bool {
	if !t.live() {
		return false
	}
	t.k.guard("Timer.Reset")
	if d < 0 {
		d = 0
	}
	k := t.k
	s := &k.q.slots[t.id]
	at := k.now + Time(d)
	if s.pos != noTimer {
		i := int(s.pos)
		k.homeCnt[0]++
		k.q.heap[i].at = at
		k.q.heap[i].depth = k.childDepth(at)
		k.q.heap[i].cnt = k.homeCnt[0]
		k.q.fix(i)
		return true
	}
	k.scheduleTimer(t.id, at)
	return true
}

// Every schedules fn at now+d, then every d thereafter, until fn returns
// false or the simulation stops. The loop holds a single reusable timer
// slot, so each tick costs one heap push and no allocation.
//
// A non-positive period is floored to one Microsecond: period 0 used to
// reschedule at the same instant forever, livelocking RunUntilIdle.
func (k *Kernel) Every(d Duration, fn func() bool) {
	if d < Microsecond {
		d = Microsecond
	}
	var t *Timer
	t = k.AfterFunc(d, func() {
		if fn() {
			t.Reset(d)
		}
	})
}

// Step fires the next pending event, advancing the clock. It reports whether
// an event was fired. Step is a sequential-kernel API: a sharded kernel
// advances only in whole conservative windows (Run/RunUntilIdle), so Step
// panics when shards > 1.
func (k *Kernel) Step() bool {
	k.guard("Step")
	if k.nshards > 1 {
		panic("sim: Step is only available on a sequential kernel (shards <= 1)")
	}
	if k.q.len() == 0 || k.stopped {
		return false
	}
	e := k.q.pop()
	k.fire(&e)
	return true
}

// fire runs one popped event with the executing-event context set, so
// same-instant children stamp the right causal depth.
func (k *Kernel) fire(e *event) {
	k.now = e.at
	k.fired++
	prevEx, prevAt, prevD := k.executing, k.curAt, k.curDepth
	k.executing, k.curAt, k.curDepth = true, e.at, e.depth
	if e.tid != noTimer {
		k.fireTimer(e.tid)
	} else {
		e.fn()
	}
	k.executing, k.curAt, k.curDepth = prevEx, prevAt, prevD
}

// fireTimer runs a timer slot's callback and recycles the slot unless the
// callback re-armed it with Reset (or released it itself with Stop).
func (k *Kernel) fireTimer(id int32) {
	gen := k.q.slots[id].gen
	fn := k.q.slots[id].fn
	fn()
	// Re-index: fn may have created timers and grown the slot table.
	s := &k.q.slots[id]
	if s.gen != gen {
		return // the callback stopped its own timer; slot already released
	}
	if s.pos == noTimer {
		k.q.freeSlot(id)
	}
}

// Run fires events until the queues drain, the clock passes until, or Stop
// is called. The clock does not advance beyond the last fired event; in
// particular a run halted by Stop leaves the clock at the event that
// stopped it rather than jumping ahead to the deadline.
func (k *Kernel) Run(until Time) {
	k.guard("Run")
	if k.nshards > 1 {
		k.runSharded(until, true)
		return
	}
	for k.q.len() > 0 && !k.stopped {
		if k.q.heap[0].at > until {
			k.now = until
			return
		}
		k.Step()
	}
	if !k.stopped && k.now < until {
		k.now = until
	}
}

// RunUntilIdle fires all pending events (including ones they schedule).
func (k *Kernel) RunUntilIdle() {
	k.guard("RunUntilIdle")
	if k.nshards > 1 {
		k.runSharded(0, false)
		return
	}
	for k.Step() {
	}
}

// Stop halts Run/RunUntilIdle after the current event (or, on a sharded
// kernel, after the current global event or window).
func (k *Kernel) Stop() {
	k.guard("Stop")
	k.stopped = true
}

// Stopped reports whether Stop has been called.
func (k *Kernel) Stopped() bool { return k.stopped }

// Pending reports the number of queued events across all queues.
func (k *Kernel) Pending() int {
	n := k.q.len()
	for _, s := range k.shards {
		n += s.q.len()
	}
	return n
}

// Stats summarizes the kernel's lifetime effort, used by the benchmark
// harness to report event throughput and queue pressure per experiment.
type Stats struct {
	Fired     uint64 // events fired since creation
	PeakQueue int    // maximum per-queue depth ever observed
}

// Stats returns the kernel's counters. Fired is exact and shard-count
// independent; PeakQueue is the maximum depth any single queue reached,
// so on a sharded kernel (where events spread across per-shard heaps) it
// is a per-queue pressure figure, not a global backlog count.
func (k *Kernel) Stats() Stats {
	st := Stats{Fired: k.fired, PeakQueue: k.peak}
	for _, s := range k.shards {
		if s.peak > st.PeakQueue {
			st.PeakQueue = s.peak
		}
	}
	return st
}
