// Package sim provides a deterministic discrete-event simulation kernel.
//
// All of PLASMA's experiments run on virtual time: events carry a firing
// time and a monotonically increasing sequence number, so two events
// scheduled for the same instant fire in scheduling order, which makes every
// run reproducible bit-for-bit from a single seed.
//
// The event queue is a value-typed 4-ary indexed heap (see queue.go):
// scheduling an event is an inline slice append, not a boxed allocation,
// and periodic work can hold a reusable Timer (AfterFunc/Reset) so tick
// loops run allocation-free.
package sim

import (
	"fmt"

	//lint:ignore DET002 the kernel owns the seeded RNG every component draws from
	"math/rand"
)

// Time is an instant in virtual time, in microseconds since simulation start.
type Time int64

// Duration is a span of virtual time in microseconds.
type Duration int64

// Common durations, mirroring time.Duration conventions.
const (
	Microsecond Duration = 1
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
)

// Millis builds a Duration from a (possibly fractional) millisecond count.
func Millis(ms float64) Duration { return Duration(ms * float64(Millisecond)) }

// Micros builds a Duration from a microsecond count.
func Micros(us float64) Duration { return Duration(us) }

// Seconds reports d as a float64 number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Seconds reports t as a float64 number of seconds since simulation start.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

func (d Duration) String() string {
	switch {
	case d >= Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(d)/float64(Millisecond))
	default:
		return fmt.Sprintf("%dµs", int64(d))
	}
}

// Kernel is a discrete-event simulator. The zero value is not usable; create
// one with New.
type Kernel struct {
	now Time
	seq uint64
	q   eventQueue
	rng *rand.Rand

	// Stopped is set by Stop; Run returns once it is observed.
	stopped bool

	fired uint64 // events fired since creation
	peak  int    // maximum queue depth observed
}

// New returns a kernel whose random stream is derived from seed.
func New(seed int64) *Kernel {
	return &Kernel{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Rand exposes the kernel's deterministic random stream.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// After schedules fn to run d from now. Negative delays fire immediately.
func (k *Kernel) After(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	k.At(k.now+Time(d), fn)
}

// At schedules fn at absolute virtual time t (clamped to now).
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		t = k.now
	}
	k.seq++
	k.q.push(event{at: t, seq: k.seq, tid: noTimer, fn: fn})
	if n := k.q.len(); n > k.peak {
		k.peak = n
	}
}

// Timer is a reusable scheduled callback created by AfterFunc. Unlike a
// plain After event, a Timer occupies one slot in the kernel for its whole
// life: Reset re-queues the same slot (fresh seq, so same-instant ordering
// still follows scheduling order) and Stop cancels it. A timer that fires
// without being re-armed by Reset — from inside its own callback — releases
// its slot automatically; after that, Stop and Reset on the stale handle
// are no-ops returning false.
type Timer struct {
	k   *Kernel
	id  int32
	gen uint32
}

// AfterFunc schedules fn to run d from now and returns a Timer that can
// reschedule (Reset) or cancel (Stop) it. Tick loops that re-arm the timer
// from inside fn schedule each subsequent fire without any allocation,
// which is how Every and the cluster/EMR tick loops run.
func (k *Kernel) AfterFunc(d Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	id := k.q.allocSlot(fn)
	t := &Timer{k: k, id: id, gen: k.q.slots[id].gen}
	k.scheduleTimer(id, k.now+Time(d))
	return t
}

func (k *Kernel) scheduleTimer(id int32, at Time) {
	if at < k.now {
		at = k.now
	}
	k.seq++
	k.q.push(event{at: at, seq: k.seq, tid: id})
	if n := k.q.len(); n > k.peak {
		k.peak = n
	}
}

func (t *Timer) live() bool {
	return t != nil && t.k != nil && t.k.q.slots[t.id].gen == t.gen
}

// Stop cancels the timer and releases its slot. It reports whether a
// pending fire was dequeued; false means the timer already fired (and was
// not re-armed) or was already stopped.
func (t *Timer) Stop() bool {
	if !t.live() {
		return false
	}
	s := &t.k.q.slots[t.id]
	pending := s.pos != noTimer
	if pending {
		t.k.q.remove(int(s.pos))
	}
	t.k.q.freeSlot(t.id)
	return pending
}

// Reset reschedules the timer to fire d from now (negative d fires
// immediately). While the timer is pending its queued event is moved in
// place; from inside the callback it re-arms the slot for another fire.
// Reset reports false on a released timer (already fired without re-arm,
// or stopped).
func (t *Timer) Reset(d Duration) bool {
	if !t.live() {
		return false
	}
	if d < 0 {
		d = 0
	}
	k := t.k
	s := &k.q.slots[t.id]
	at := k.now + Time(d)
	if s.pos != noTimer {
		i := int(s.pos)
		k.seq++
		k.q.heap[i].at = at
		k.q.heap[i].seq = k.seq
		k.q.fix(i)
		return true
	}
	k.scheduleTimer(t.id, at)
	return true
}

// Every schedules fn at now+d, then every d thereafter, until fn returns
// false or the simulation stops. The loop holds a single reusable timer
// slot, so each tick costs one heap push and no allocation.
//
// A non-positive period is floored to one Microsecond: period 0 used to
// reschedule at the same instant forever, livelocking RunUntilIdle.
func (k *Kernel) Every(d Duration, fn func() bool) {
	if d < Microsecond {
		d = Microsecond
	}
	var t *Timer
	t = k.AfterFunc(d, func() {
		if fn() {
			t.Reset(d)
		}
	})
}

// Step fires the next pending event, advancing the clock. It reports whether
// an event was fired.
func (k *Kernel) Step() bool {
	if k.q.len() == 0 || k.stopped {
		return false
	}
	e := k.q.pop()
	k.now = e.at
	k.fired++
	if e.tid != noTimer {
		k.fireTimer(e.tid)
	} else {
		e.fn()
	}
	return true
}

// fireTimer runs a timer slot's callback and recycles the slot unless the
// callback re-armed it with Reset (or released it itself with Stop).
func (k *Kernel) fireTimer(id int32) {
	gen := k.q.slots[id].gen
	fn := k.q.slots[id].fn
	fn()
	// Re-index: fn may have created timers and grown the slot table.
	s := &k.q.slots[id]
	if s.gen != gen {
		return // the callback stopped its own timer; slot already released
	}
	if s.pos == noTimer {
		k.q.freeSlot(id)
	}
}

// Run fires events until the queue drains, the clock passes until, or Stop
// is called. The clock does not advance beyond the last fired event; in
// particular a run halted by Stop leaves the clock at the event that
// stopped it rather than jumping ahead to the deadline.
func (k *Kernel) Run(until Time) {
	for k.q.len() > 0 && !k.stopped {
		if k.q.heap[0].at > until {
			k.now = until
			return
		}
		k.Step()
	}
	if !k.stopped && k.now < until {
		k.now = until
	}
}

// RunUntilIdle fires all pending events (including ones they schedule).
func (k *Kernel) RunUntilIdle() {
	for k.Step() {
	}
}

// Stop halts Run/RunUntilIdle after the current event.
func (k *Kernel) Stop() { k.stopped = true }

// Stopped reports whether Stop has been called.
func (k *Kernel) Stopped() bool { return k.stopped }

// Pending reports the number of queued events.
func (k *Kernel) Pending() int { return k.q.len() }

// Stats summarizes the kernel's lifetime effort, used by the benchmark
// harness to report event throughput and queue pressure per experiment.
type Stats struct {
	Fired     uint64 // events fired since creation
	PeakQueue int    // maximum queue depth ever observed
}

// Stats returns the kernel's counters.
func (k *Kernel) Stats() Stats { return Stats{Fired: k.fired, PeakQueue: k.peak} }
