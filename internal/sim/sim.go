// Package sim provides a deterministic discrete-event simulation kernel.
//
// All of PLASMA's experiments run on virtual time: events carry a firing
// time and a monotonically increasing sequence number, so two events
// scheduled for the same instant fire in scheduling order, which makes every
// run reproducible bit-for-bit from a single seed.
package sim

import (
	"container/heap"
	"fmt"

	//lint:ignore DET002 the kernel owns the seeded RNG every component draws from
	"math/rand"
)

// Time is an instant in virtual time, in microseconds since simulation start.
type Time int64

// Duration is a span of virtual time in microseconds.
type Duration int64

// Common durations, mirroring time.Duration conventions.
const (
	Microsecond Duration = 1
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
)

// Millis builds a Duration from a (possibly fractional) millisecond count.
func Millis(ms float64) Duration { return Duration(ms * float64(Millisecond)) }

// Micros builds a Duration from a microsecond count.
func Micros(us float64) Duration { return Duration(us) }

// Seconds reports d as a float64 number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Seconds reports t as a float64 number of seconds since simulation start.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

func (d Duration) String() string {
	switch {
	case d >= Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(d)/float64(Millisecond))
	default:
		return fmt.Sprintf("%dµs", int64(d))
	}
}

type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Kernel is a discrete-event simulator. The zero value is not usable; create
// one with New.
type Kernel struct {
	now    Time
	seq    uint64
	events eventHeap
	rng    *rand.Rand

	// Stopped is set by Stop; Run returns once it is observed.
	stopped bool
}

// New returns a kernel whose random stream is derived from seed.
func New(seed int64) *Kernel {
	return &Kernel{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Rand exposes the kernel's deterministic random stream.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// After schedules fn to run d from now. Negative delays fire immediately.
func (k *Kernel) After(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	k.At(k.now+Time(d), fn)
}

// At schedules fn at absolute virtual time t (clamped to now).
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		t = k.now
	}
	k.seq++
	heap.Push(&k.events, &event{at: t, seq: k.seq, fn: fn})
}

// Every schedules fn at now+d, then every d thereafter, until fn returns
// false or the simulation stops.
func (k *Kernel) Every(d Duration, fn func() bool) {
	var tick func()
	tick = func() {
		if !fn() {
			return
		}
		k.After(d, tick)
	}
	k.After(d, tick)
}

// Step fires the next pending event, advancing the clock. It reports whether
// an event was fired.
func (k *Kernel) Step() bool {
	if len(k.events) == 0 || k.stopped {
		return false
	}
	e := heap.Pop(&k.events).(*event)
	k.now = e.at
	e.fn()
	return true
}

// Run fires events until the queue drains, the clock passes until, or Stop
// is called. The clock does not advance beyond the last fired event.
func (k *Kernel) Run(until Time) {
	for len(k.events) > 0 && !k.stopped {
		if k.events[0].at > until {
			k.now = until
			return
		}
		k.Step()
	}
	if k.now < until {
		k.now = until
	}
}

// RunUntilIdle fires all pending events (including ones they schedule).
func (k *Kernel) RunUntilIdle() {
	for k.Step() {
	}
}

// Stop halts Run/RunUntilIdle after the current event.
func (k *Kernel) Stop() { k.stopped = true }

// Stopped reports whether Stop has been called.
func (k *Kernel) Stopped() bool { return k.stopped }

// Pending reports the number of queued events.
func (k *Kernel) Pending() int { return len(k.events) }
