package sim

// This file implements the kernel's event queue: a value-typed 4-ary
// min-heap ordered by (at, seq). Events are stored inline in the heap
// slice, so scheduling allocates nothing beyond amortized slice growth —
// the previous implementation boxed one *event per schedule through
// container/heap's interface{} API, which made the allocator the hot
// path at scale (one pointer alloc plus GC pressure per event).
//
// The heap is "indexed": events owned by a Timer carry the id of a slot
// in the slot table, and every move updates the slot's heap position, so
// Timer.Stop and Timer.Reset are O(log n) removals/fixes instead of
// tombstone scans. Plain After/At events skip all slot bookkeeping.
//
// A 4-ary layout (children of i at 4i+1..4i+4) halves tree height vs a
// binary heap; the extra comparisons per level stay inside one cache
// line of []event, which profiles faster for the short-payload events
// the kernel stores.

// event is one scheduled callback. Timer events leave fn nil and carry
// the owning slot id in tid; the slot holds the callback so it survives
// the fire and can be re-armed by Reset.
//
// home and cnt form the order key together with at (see before); dst is
// pure routing — the home whose shard executes the event, or GlobalHome
// for coordinator events. Events scheduled through the kernel's plain
// After/At/AfterFunc APIs are global on both axes.
type event struct {
	at    Time
	depth int32 // same-instant causal depth: parent's depth + 1 when at == parent's at
	home  int32 // scheduling home that stamped cnt (order key), GlobalHome for kernel APIs
	cnt   uint64
	dst   int32 // executing home (routing), GlobalHome for coordinator events
	tid   int32 // owning timer slot, or noTimer
	fn    func()
}

const noTimer = int32(-1)

// before is the queue's strict total order and the kernel's same-instant
// ordering contract: fire time, then same-instant causal depth, then
// scheduling home (global events first, then homes in ascending id
// order), then per-home scheduling order. The (home, cnt) pair is unique
// per kernel — each home's counter is bumped only by code executing for
// that home — so ties cannot exist and any correct heap pops events in
// exactly one order.
//
// depth makes the order causal: an event scheduled at its parent's
// instant carries the parent's depth + 1, so every child's key exceeds
// its parent's and a heap's pop sequence is monotone in the key. For
// workloads driven purely through the kernel's global APIs this refines
// nothing — among same-instant events, scheduling order (the old global
// seq tiebreak) already agrees with (depth, cnt) order, because a deeper
// event can only be scheduled after its shallower producer ran — so the
// sequential kernel's semantics are unchanged.
//
// The key as a whole is what makes the sharded kernel byte-identical to
// the sequential one: it is computed from per-home scheduling history
// only — never from wall-clock execution order — so the key multiset
// (and therefore every heap's pop order) is independent of the shard
// count, and deferred side effects can be merged at window barriers in
// exactly the order a sequential run produces them inline.
func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	if e.depth != o.depth {
		return e.depth < o.depth
	}
	if e.home != o.home {
		return e.home < o.home
	}
	return e.cnt < o.cnt
}

// timerSlot is the persistent half of a Timer: the callback plus the
// current heap position of its pending event (noTimer when not queued).
// gen guards stale Timer handles after a slot is recycled.
type timerSlot struct {
	fn  func()
	pos int32
	gen uint32
}

type eventQueue struct {
	heap  []event
	slots []timerSlot
	free  []int32 // recycled slot ids
}

func (q *eventQueue) len() int { return len(q.heap) }

// setPos records heap[i]'s location in its owning slot, if any.
func (q *eventQueue) setPos(i int) {
	if t := q.heap[i].tid; t != noTimer {
		q.slots[t].pos = int32(i)
	}
}

func (q *eventQueue) push(e event) {
	q.heap = append(q.heap, e)
	q.siftUp(len(q.heap) - 1)
}

// pop removes and returns the minimum event.
func (q *eventQueue) pop() event {
	e := q.heap[0]
	if e.tid != noTimer {
		q.slots[e.tid].pos = noTimer
	}
	last := len(q.heap) - 1
	if last > 0 {
		q.heap[0] = q.heap[last]
	}
	q.heap[last] = event{} // drop the fn reference for the GC
	q.heap = q.heap[:last]
	if last > 0 {
		q.siftDown(0)
	}
	return e
}

// remove deletes the event at heap index i (Timer.Stop).
func (q *eventQueue) remove(i int) {
	if t := q.heap[i].tid; t != noTimer {
		q.slots[t].pos = noTimer
	}
	last := len(q.heap) - 1
	if i != last {
		q.heap[i] = q.heap[last]
	}
	q.heap[last] = event{}
	q.heap = q.heap[:last]
	if i != last {
		q.fix(i)
	}
}

// fix restores heap order around index i after its event changed
// (Timer.Reset) or was replaced (remove).
func (q *eventQueue) fix(i int) {
	if !q.siftDown(i) {
		q.siftUp(i)
	}
}

// siftUp moves heap[i] toward the root; reports whether it moved.
func (q *eventQueue) siftUp(i int) bool {
	e := q.heap[i]
	start := i
	for i > 0 {
		p := (i - 1) / 4
		if !e.before(&q.heap[p]) {
			break
		}
		q.heap[i] = q.heap[p]
		q.setPos(i)
		i = p
	}
	q.heap[i] = e
	q.setPos(i)
	return i != start
}

// siftDown moves heap[i] toward the leaves; reports whether it moved.
func (q *eventQueue) siftDown(i int) bool {
	n := len(q.heap)
	e := q.heap[i]
	start := i
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if q.heap[c].before(&q.heap[best]) {
				best = c
			}
		}
		if !q.heap[best].before(&e) {
			break
		}
		q.heap[i] = q.heap[best]
		q.setPos(i)
		i = best
	}
	q.heap[i] = e
	q.setPos(i)
	return i != start
}

// allocSlot takes a slot off the free list (or grows the table) and
// installs fn.
func (q *eventQueue) allocSlot(fn func()) int32 {
	if n := len(q.free); n > 0 {
		id := q.free[n-1]
		q.free = q.free[:n-1]
		s := &q.slots[id]
		s.fn, s.pos = fn, noTimer
		return id
	}
	q.slots = append(q.slots, timerSlot{fn: fn, pos: noTimer})
	return int32(len(q.slots) - 1)
}

// freeSlot recycles a slot; the generation bump invalidates outstanding
// Timer handles.
func (q *eventQueue) freeSlot(id int32) {
	s := &q.slots[id]
	s.fn = nil
	s.pos = noTimer
	s.gen++
	q.free = append(q.free, id)
}
