package sim

import (
	"testing"
	"testing/quick"
)

func TestClockStartsAtZero(t *testing.T) {
	k := New(1)
	if k.Now() != 0 {
		t.Fatalf("Now() = %d, want 0", k.Now())
	}
}

func TestAfterFiresInOrder(t *testing.T) {
	k := New(1)
	var got []int
	k.After(30*Millisecond, func() { got = append(got, 3) })
	k.After(10*Millisecond, func() { got = append(got, 1) })
	k.After(20*Millisecond, func() { got = append(got, 2) })
	k.RunUntilIdle()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fire order %v, want %v", got, want)
		}
	}
	if k.Now() != Time(30*Millisecond) {
		t.Fatalf("final clock %d, want %d", k.Now(), 30*Millisecond)
	}
}

func TestSameInstantFIFO(t *testing.T) {
	k := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.After(Millisecond, func() { got = append(got, i) })
	}
	k.RunUntilIdle()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-instant events reordered: %v", got)
		}
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	k := New(1)
	fired := false
	k.After(-5, func() { fired = true })
	k.RunUntilIdle()
	if !fired || k.Now() != 0 {
		t.Fatalf("fired=%v now=%d; want true, 0", fired, k.Now())
	}
}

func TestAtInPastClamped(t *testing.T) {
	k := New(1)
	k.After(10*Millisecond, func() {
		k.At(Time(Millisecond), func() {})
	})
	k.RunUntilIdle()
	if k.Now() != Time(10*Millisecond) {
		t.Fatalf("clock went backwards: %d", k.Now())
	}
}

func TestRunStopsAtDeadline(t *testing.T) {
	k := New(1)
	count := 0
	k.Every(Second, func() bool { count++; return true })
	k.Run(Time(5*Second + Millisecond))
	if count != 5 {
		t.Fatalf("ticks = %d, want 5", count)
	}
	if k.Now() != Time(5*Second+Millisecond) {
		t.Fatalf("clock = %d, want deadline", k.Now())
	}
}

func TestRunAdvancesToDeadlineWhenIdle(t *testing.T) {
	k := New(1)
	k.Run(Time(7 * Second))
	if k.Now() != Time(7*Second) {
		t.Fatalf("clock = %d, want 7s", k.Now())
	}
}

func TestEveryStopsOnFalse(t *testing.T) {
	k := New(1)
	count := 0
	k.Every(Second, func() bool {
		count++
		return count < 3
	})
	k.RunUntilIdle()
	if count != 3 {
		t.Fatalf("ticks = %d, want 3", count)
	}
}

func TestStopHaltsRun(t *testing.T) {
	k := New(1)
	count := 0
	k.Every(Second, func() bool {
		count++
		if count == 2 {
			k.Stop()
		}
		return true
	})
	k.Run(Time(100 * Second))
	if count != 2 {
		t.Fatalf("ticks = %d, want 2", count)
	}
	if !k.Stopped() {
		t.Fatal("Stopped() = false after Stop")
	}
}

func TestNestedScheduling(t *testing.T) {
	k := New(1)
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			k.After(Microsecond, recurse)
		}
	}
	k.After(0, recurse)
	k.RunUntilIdle()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
}

func TestDeterminismAcrossKernels(t *testing.T) {
	run := func() []int64 {
		k := New(42)
		var trace []int64
		for i := 0; i < 50; i++ {
			d := Duration(k.Rand().Int63n(int64(Second)))
			k.After(d, func() { trace = append(trace, int64(k.Now())) })
		}
		k.RunUntilIdle()
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different trace lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{3 * Second, "3.000s"},
		{Millis(1.5), "1.500ms"},
		{250 * Microsecond, "250µs"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", c.d, got, c.want)
		}
	}
}

// Property: the kernel never fires events out of time order, regardless of
// the scheduling pattern.
func TestPropertyMonotonicClock(t *testing.T) {
	f := func(delays []uint32) bool {
		k := New(7)
		last := Time(-1)
		ok := true
		for _, d := range delays {
			k.After(Duration(d%uint32(10*Second)), func() {
				if k.Now() < last {
					ok = false
				}
				last = k.Now()
			})
		}
		k.RunUntilIdle()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Pending decreases to zero and all scheduled events fire exactly
// once.
func TestPropertyAllEventsFire(t *testing.T) {
	f := func(delays []uint16) bool {
		k := New(9)
		fired := 0
		for _, d := range delays {
			k.After(Duration(d), func() { fired++ })
		}
		k.RunUntilIdle()
		return fired == len(delays) && k.Pending() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
