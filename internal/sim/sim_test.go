package sim

import (
	"testing"
	"testing/quick"
)

func TestClockStartsAtZero(t *testing.T) {
	k := New(1)
	if k.Now() != 0 {
		t.Fatalf("Now() = %d, want 0", k.Now())
	}
}

func TestAfterFiresInOrder(t *testing.T) {
	k := New(1)
	var got []int
	k.After(30*Millisecond, func() { got = append(got, 3) })
	k.After(10*Millisecond, func() { got = append(got, 1) })
	k.After(20*Millisecond, func() { got = append(got, 2) })
	k.RunUntilIdle()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fire order %v, want %v", got, want)
		}
	}
	if k.Now() != Time(30*Millisecond) {
		t.Fatalf("final clock %d, want %d", k.Now(), 30*Millisecond)
	}
}

func TestSameInstantFIFO(t *testing.T) {
	k := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.After(Millisecond, func() { got = append(got, i) })
	}
	k.RunUntilIdle()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-instant events reordered: %v", got)
		}
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	k := New(1)
	fired := false
	k.After(-5, func() { fired = true })
	k.RunUntilIdle()
	if !fired || k.Now() != 0 {
		t.Fatalf("fired=%v now=%d; want true, 0", fired, k.Now())
	}
}

func TestAtInPastClamped(t *testing.T) {
	k := New(1)
	k.After(10*Millisecond, func() {
		k.At(Time(Millisecond), func() {})
	})
	k.RunUntilIdle()
	if k.Now() != Time(10*Millisecond) {
		t.Fatalf("clock went backwards: %d", k.Now())
	}
}

func TestRunStopsAtDeadline(t *testing.T) {
	k := New(1)
	count := 0
	k.Every(Second, func() bool { count++; return true })
	k.Run(Time(5*Second + Millisecond))
	if count != 5 {
		t.Fatalf("ticks = %d, want 5", count)
	}
	if k.Now() != Time(5*Second+Millisecond) {
		t.Fatalf("clock = %d, want deadline", k.Now())
	}
}

func TestRunAdvancesToDeadlineWhenIdle(t *testing.T) {
	k := New(1)
	k.Run(Time(7 * Second))
	if k.Now() != Time(7*Second) {
		t.Fatalf("clock = %d, want 7s", k.Now())
	}
}

func TestEveryStopsOnFalse(t *testing.T) {
	k := New(1)
	count := 0
	k.Every(Second, func() bool {
		count++
		return count < 3
	})
	k.RunUntilIdle()
	if count != 3 {
		t.Fatalf("ticks = %d, want 3", count)
	}
}

func TestStopHaltsRun(t *testing.T) {
	k := New(1)
	count := 0
	k.Every(Second, func() bool {
		count++
		if count == 2 {
			k.Stop()
		}
		return true
	})
	k.Run(Time(100 * Second))
	if count != 2 {
		t.Fatalf("ticks = %d, want 2", count)
	}
	if !k.Stopped() {
		t.Fatal("Stopped() = false after Stop")
	}
	// A stopped run halts after the current event: the clock must stay at
	// the last fired event, not jump ahead to the deadline.
	if k.Now() != Time(2*Second) {
		t.Fatalf("clock after Stop = %d, want %d (last fired event)", k.Now(), 2*Second)
	}
}

func TestStopBeforeRunLeavesClock(t *testing.T) {
	k := New(1)
	k.After(Second, func() {})
	k.Stop()
	k.Run(Time(10 * Second))
	if k.Now() != 0 {
		t.Fatalf("clock = %d, want 0: no event fired before Stop", k.Now())
	}
}

// Regression: a non-positive period used to reschedule at the same instant
// forever, so RunUntilIdle never returned. The period is floored to 1µs.
func TestEveryNonPositivePeriodTerminates(t *testing.T) {
	for _, d := range []Duration{0, -5} {
		k := New(1)
		count := 0
		k.Every(d, func() bool {
			count++
			return count < 4
		})
		k.RunUntilIdle() // must terminate
		if count != 4 {
			t.Fatalf("Every(%d): ticks = %d, want 4", d, count)
		}
		if k.Now() != Time(4*Microsecond) {
			t.Fatalf("Every(%d): clock = %d, want 4µs (floored period)", d, k.Now())
		}
	}
}

func TestAfterFuncFiresOnce(t *testing.T) {
	k := New(1)
	fired := 0
	k.AfterFunc(Second, func() { fired++ })
	k.RunUntilIdle()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
}

func TestTimerStopCancels(t *testing.T) {
	k := New(1)
	fired := false
	tm := k.AfterFunc(Second, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop() = false on a pending timer")
	}
	k.RunUntilIdle()
	if fired {
		t.Fatal("stopped timer fired")
	}
	if tm.Stop() {
		t.Fatal("second Stop() = true")
	}
	if tm.Reset(Second) {
		t.Fatal("Reset on a stopped timer = true")
	}
}

func TestTimerResetPostpones(t *testing.T) {
	k := New(1)
	var at Time
	tm := k.AfterFunc(Second, func() { at = k.Now() })
	tm.Reset(3 * Second)
	k.RunUntilIdle()
	if at != Time(3*Second) {
		t.Fatalf("fired at %d, want 3s", at)
	}
	// The timer released its slot after firing un-re-armed.
	if tm.Reset(Second) {
		t.Fatal("Reset after unre-armed fire = true")
	}
}

func TestTimerRearmFromCallback(t *testing.T) {
	k := New(1)
	var times []Time
	var tm *Timer
	tm = k.AfterFunc(Second, func() {
		times = append(times, k.Now())
		if len(times) < 3 {
			tm.Reset(Second)
		}
	})
	k.RunUntilIdle()
	want := []Time{Time(Second), Time(2 * Second), Time(3 * Second)}
	if len(times) != len(want) {
		t.Fatalf("fires = %v, want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("fires = %v, want %v", times, want)
		}
	}
}

func TestTimerStopFromOwnCallback(t *testing.T) {
	k := New(1)
	var tm *Timer
	ran := false
	tm = k.AfterFunc(Second, func() {
		ran = true
		tm.Stop() // releasing the slot from inside the callback must be safe
	})
	k.RunUntilIdle()
	if !ran {
		t.Fatal("callback did not run")
	}
	if tm.Reset(Second) {
		t.Fatal("Reset after self-Stop = true")
	}
}

// Timer slots are recycled: a long run of one-shot timers must not grow the
// slot table beyond the number simultaneously live.
func TestTimerSlotRecycling(t *testing.T) {
	k := New(1)
	for i := 0; i < 1000; i++ {
		k.AfterFunc(Duration(i), func() {})
	}
	k.RunUntilIdle()
	for i := 0; i < 1000; i++ {
		k.AfterFunc(Duration(i), func() {})
		k.RunUntilIdle()
	}
	if n := len(k.q.slots); n > 1001 {
		t.Fatalf("slot table grew to %d; recycling is broken", n)
	}
}

func TestKernelStats(t *testing.T) {
	k := New(1)
	for i := 0; i < 10; i++ {
		k.After(Duration(i), func() {})
	}
	if st := k.Stats(); st.PeakQueue != 10 || st.Fired != 0 {
		t.Fatalf("pre-run stats = %+v, want peak 10, fired 0", st)
	}
	k.RunUntilIdle()
	if st := k.Stats(); st.Fired != 10 || st.PeakQueue != 10 {
		t.Fatalf("post-run stats = %+v, want fired 10, peak 10", st)
	}
}

func TestNestedScheduling(t *testing.T) {
	k := New(1)
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			k.After(Microsecond, recurse)
		}
	}
	k.After(0, recurse)
	k.RunUntilIdle()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
}

func TestDeterminismAcrossKernels(t *testing.T) {
	run := func() []int64 {
		k := New(42)
		var trace []int64
		for i := 0; i < 50; i++ {
			d := Duration(k.Rand().Int63n(int64(Second)))
			k.After(d, func() { trace = append(trace, int64(k.Now())) })
		}
		k.RunUntilIdle()
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different trace lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{3 * Second, "3.000s"},
		{Millis(1.5), "1.500ms"},
		{250 * Microsecond, "250µs"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", c.d, got, c.want)
		}
	}
}

// Property: the kernel never fires events out of time order, regardless of
// the scheduling pattern.
func TestPropertyMonotonicClock(t *testing.T) {
	f := func(delays []uint32) bool {
		k := New(7)
		last := Time(-1)
		ok := true
		for _, d := range delays {
			k.After(Duration(d%uint32(10*Second)), func() {
				if k.Now() < last {
					ok = false
				}
				last = k.Now()
			})
		}
		k.RunUntilIdle()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Pending decreases to zero and all scheduled events fire exactly
// once.
func TestPropertyAllEventsFire(t *testing.T) {
	f := func(delays []uint16) bool {
		k := New(9)
		fired := 0
		for _, d := range delays {
			k.After(Duration(d), func() { fired++ })
		}
		k.RunUntilIdle()
		return fired == len(delays) && k.Pending() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
