package sim

// This file implements the sharded execution mode: homed events are
// partitioned across per-shard heaps and drained by one goroutine per
// shard inside conservative time windows, while the (at, home, cnt)
// order key from queue.go keeps every run byte-identical to the
// sequential kernel at the same seed.
//
// The synchronization model is classic conservative PDES specialized to
// PLASMA's structure:
//
//   - A "home" is a unit of sequential state — one cluster machine. Home
//     h maps to shard h mod nshards, and all events destined to h
//     execute on that shard's goroutine, so per-machine state needs no
//     locks.
//   - Cross-home interactions have a minimum latency: Env.Schedule
//     applies a delay floor of the configured lookahead to any schedule
//     whose destination is a different home. The floor is applied
//     identically on sequential and sharded kernels, which is what makes
//     the two modes produce the same event set.
//   - A window [T, Tend) opens at the earliest homed event time T and
//     closes at min(next global event, T + lookahead, deadline). Within
//     the window each shard drains its own heap independently: same-home
//     follow-ups (delay < lookahead) stay on the shard, and anything
//     cross-home or global lands at >= T + lookahead >= Tend — provably
//     outside the window — so shards never need to communicate while the
//     window is open. Cross-shard events collect in per-shard outboxes
//     and are routed at the barrier.
//   - Global events (kernel After/At/timers: EMR ticks, chaos, harness
//     probes) run single-threaded between windows and bound every window,
//     so policy code never races with actor execution.
//
// Side effects that must remain globally ordered (e.g. trace emission)
// but occur inside homed events go through Env.Defer: the closures are
// recorded per shard with the scheduling key of the event that deferred
// them and replayed at the barrier in key order, with the clock pinned to
// each record's instant — the same order and clock a sequential run
// produces by running them inline.

import "sort"

// GlobalHome is the pseudo-home of events scheduled through the kernel's
// own After/At/AfterFunc APIs. It sorts before every real home at the
// same instant, and its events always execute single-threaded.
const GlobalHome = int32(-1)

// SetShards partitions homed events across n shards (n <= 1 restores the
// sequential reference mode). It must be called before any event is
// scheduled or Env created, so that every event routes consistently for
// the kernel's whole life.
func (k *Kernel) SetShards(n int) {
	if n < 1 {
		n = 1
	}
	if k.fired > 0 || k.q.len() > 0 || len(k.envs) > 0 {
		panic("sim: SetShards must be called before scheduling events or creating Envs")
	}
	k.nshards = n
	k.shards = nil
	if n > 1 {
		k.shards = make([]*kshard, n)
		for i := range k.shards {
			k.shards[i] = new(kshard)
		}
	}
}

// Shards reports the configured shard count (minimum 1).
func (k *Kernel) Shards() int {
	if k.nshards < 1 {
		return 1
	}
	return k.nshards
}

// SetLookahead sets the conservative lookahead: the minimum virtual
// latency of any cross-home interaction, used both as the delay floor
// Env.Schedule applies to cross-home events and as the width bound of
// each concurrent window. Larger values mean wider windows (more
// parallelism); the value must not exceed the real minimum cross-machine
// latency of the workload or the floor would reorder its messages. A
// sharded run (shards > 1) requires a positive lookahead.
//
// The floor applies at every shard count, including the sequential
// reference kernel, so choosing a lookahead changes the simulated
// workload once — not per mode.
func (k *Kernel) SetLookahead(d Duration) {
	if d < 0 {
		d = 0
	}
	k.lookahead = d
}

// Lookahead reports the configured lookahead.
func (k *Kernel) Lookahead() Duration { return k.lookahead }

// ShardIndexOf reports which shard executes events homed at home. Useful
// for striping counters that homed code updates concurrently.
func (k *Kernel) ShardIndexOf(home int32) int {
	if k.nshards <= 1 || home < 0 {
		return 0
	}
	return int(home) % k.nshards
}

// kshard is one shard: a heap of events homed at the shard's homes, plus
// window-local state owned by the shard's worker goroutine while a
// window is open. Shards never hold timer events.
type kshard struct {
	q    eventQueue
	now  Time // last executed event time on this shard
	peak int

	// Owned by the worker while k.inWindow, read by the coordinator
	// only after the WaitGroup join.
	curAt       Time // order key of the executing event, for Defer records
	curDepth    int32
	curHome     int32
	curCnt      uint64
	defIdx      int32
	windowFired uint64
	out         []event    // cross-shard/global events produced this window
	defs        []deferred // deferred side effects produced this window
	panicked    any
}

// deferred is one Env.Defer record: the closure plus the scheduling key
// of the event that deferred it (idx breaks ties within one event).
type deferred struct {
	at    Time
	depth int32
	home  int32
	cnt   uint64
	idx   int32
	fn    func()
}

// Env is a scheduling context bound to one home. Homed events must use
// their Env — never the kernel's global APIs — so that (a) the order key
// is stamped from the home's own counter, which only the home's shard
// touches, and (b) cross-home schedules pick up the lookahead floor.
//
// Ownership rule: env(h) may be used by code executing an event destined
// to h (on h's shard) and by global-phase code between windows. Using
// another home's Env from inside a window is a data race on that home's
// counter; the kernel cannot detect it cheaply, so the rule is part of
// the API contract (and the race detector catches violations in tests).
type Env struct {
	k     *Kernel
	home  int32
	shard int
}

// Env returns the scheduling context for home (>= 0), creating it on
// first use. Envs must be created from the global phase — typically when
// the machine they represent is provisioned.
func (k *Kernel) Env(home int32) *Env {
	k.guard("Env")
	if home < 0 {
		panic("sim: Env home must be >= 0")
	}
	for int(home) >= len(k.envs) {
		k.envs = append(k.envs, nil)
	}
	if e := k.envs[home]; e != nil {
		return e
	}
	for int(home)+1 >= len(k.homeCnt) {
		k.homeCnt = append(k.homeCnt, 0)
	}
	e := &Env{k: k, home: home, shard: k.ShardIndexOf(home)}
	k.envs[home] = e
	return e
}

// Home reports the home this Env schedules for.
func (e *Env) Home() int32 { return e.home }

// Now returns the current virtual time as seen by this Env's home: the
// executing event's time while the home's shard is draining a window,
// the kernel clock otherwise.
func (e *Env) Now() Time {
	k := e.k
	if k.inWindow {
		return k.shards[e.shard].now
	}
	return k.now
}

// Schedule queues fn to run d from now, homed at dst (GlobalHome for a
// coordinator event that must run single-threaded between windows). The
// event's order key is stamped from this Env's home counter.
//
// Cross-home schedules (dst != this Env's home, including GlobalHome)
// are floored to the kernel lookahead. The floor is applied at every
// shard count; with the sequential default lookahead of 0 it is a no-op.
func (e *Env) Schedule(dst int32, d Duration, fn func()) {
	k := e.k
	if d < 0 {
		d = 0
	}
	if dst != e.home && d < k.lookahead {
		d = k.lookahead
	}
	if !k.inWindow {
		at := k.now + Time(d)
		k.homeCnt[e.home+1]++
		k.route(event{at: at, depth: k.childDepth(at), home: e.home, cnt: k.homeCnt[e.home+1], dst: dst, tid: noTimer, fn: fn})
		return
	}
	s := k.shards[e.shard]
	at := s.now + Time(d)
	var depth int32
	if at == s.curAt {
		depth = s.curDepth + 1
	}
	k.homeCnt[e.home+1]++
	ev := event{at: at, depth: depth, home: e.home, cnt: k.homeCnt[e.home+1], dst: dst, tid: noTimer, fn: fn}
	if dst != GlobalHome && int(dst)%k.nshards == e.shard {
		// Same-shard follow-up: deliver locally; it may still fire
		// inside the open window.
		s.q.push(ev)
		if n := s.q.len(); n > s.peak {
			s.peak = n
		}
		return
	}
	// Cross-shard or global: the lookahead floor guarantees the event
	// lands at or beyond the window close, so routing can wait for the
	// barrier.
	s.out = append(s.out, ev)
}

// Defer records fn to run after the current window closes, in the global
// phase, ordered by the scheduling key of the deferring event and with
// the clock pinned to that event's instant. On a sequential kernel fn
// runs inline. Use it for side effects that must interleave in one
// global order — trace emission, shared accounting — from homed events.
func (e *Env) Defer(fn func()) {
	k := e.k
	if !k.inWindow {
		fn()
		return
	}
	s := k.shards[e.shard]
	s.defs = append(s.defs, deferred{at: s.curAt, depth: s.curDepth, home: s.curHome, cnt: s.curCnt, idx: s.defIdx, fn: fn})
	s.defIdx++
}

// route pushes an event generated in the global phase onto the queue
// that owns it.
func (k *Kernel) route(ev event) {
	if k.nshards <= 1 || ev.dst == GlobalHome {
		k.q.push(ev)
		if n := k.q.len(); n > k.peak {
			k.peak = n
		}
		return
	}
	s := k.shards[int(ev.dst)%k.nshards]
	s.q.push(ev)
	if n := s.q.len(); n > s.peak {
		s.peak = n
	}
}

// bound is an exclusive upper bound on event keys, used to close a
// window at an exact point in the (at, depth, home, cnt) total order. A
// bound of (t, 0, GlobalHome, 0) admits exactly the events strictly
// before t: no real event has cnt 0, so nothing compares equal.
type bound struct {
	at    Time
	depth int32
	home  int32
	cnt   uint64
}

// admits reports whether e sorts strictly before the bound.
func (b bound) admits(e *event) bool {
	if e.at != b.at {
		return e.at < b.at
	}
	if e.depth != b.depth {
		return e.depth < b.depth
	}
	if e.home != b.home {
		return e.home < b.home
	}
	return e.cnt < b.cnt
}

// runSharded is Run/RunUntilIdle for a sharded kernel: alternate between
// single-threaded global-queue events and concurrent windows over the
// shard heaps, interleaving the two streams in exact key order. When
// bounded, the clock behaves exactly like the sequential Run(until): it
// never passes the last fired event unless the queues ran dry or the
// deadline cut the run short.
//
// The global queue holds two kinds of events: kernel-scheduled ones
// (home GlobalHome, sorting before every homed event at their instant)
// and Env-escalated ones (Schedule(GlobalHome, ...), keyed by their
// scheduling home, sorting among homed events). The dispatch below
// compares full keys — not just times — so both kinds fire at exactly
// their key-order position, and a window closes at the global head's key
// when that key falls inside the lookahead horizon.
func (k *Kernel) runSharded(until Time, bounded bool) {
	if k.lookahead <= 0 {
		panic("sim: sharded run requires a positive lookahead (SetLookahead)")
	}
	for !k.stopped {
		gOK := k.q.len() > 0
		var minHead *event
		for _, s := range k.shards {
			if s.q.len() > 0 && (minHead == nil || s.q.heap[0].before(minHead)) {
				minHead = &s.q.heap[0]
			}
		}
		if !gOK && minHead == nil {
			break
		}
		if gOK && (minHead == nil || k.q.heap[0].before(minHead)) {
			if bounded && k.q.heap[0].at > until {
				k.now = until
				return
			}
			e := k.q.pop()
			k.fire(&e)
			continue
		}
		sAt := minHead.at
		if bounded && sAt > until {
			k.now = until
			return
		}
		// Close the window at the earliest of: the lookahead horizon
		// (beyond which this window's events may still cause effects),
		// the deadline, and the global head's key. Cross-home children
		// born in the window land at >= sAt + lookahead, which every
		// candidate bound excludes — so the bound is stable while the
		// window runs.
		b := bound{at: sAt + Time(k.lookahead), depth: 0, home: GlobalHome, cnt: 0}
		if bounded && until+1 < b.at {
			b = bound{at: until + 1, depth: 0, home: GlobalHome, cnt: 0}
		}
		if gOK {
			if g := &k.q.heap[0]; b.admits(g) {
				b = bound{at: g.at, depth: g.depth, home: g.home, cnt: g.cnt}
			}
		}
		k.runWindow(b)
	}
	if bounded && !k.stopped && k.now < until {
		k.now = until
	}
}

// runWindow drains every shard with work before the bound concurrently,
// then routes outboxes, replays deferred side effects in key order, and
// advances the kernel clock to the last executed event.
func (k *Kernel) runWindow(b bound) {
	active := k.active[:0]
	for _, s := range k.shards {
		if s.q.len() > 0 && b.admits(&s.q.heap[0]) {
			active = append(active, s)
		}
	}
	k.active = active
	if len(active) == 1 {
		// One busy shard: drain inline, skip the goroutine round trip.
		k.inWindow = true
		active[0].drain(b)
		k.inWindow = false
	} else {
		k.inWindow = true
		done := make(chan struct{})
		running := len(active)
		for _, s := range active {
			go func(s *kshard) {
				defer func() {
					if r := recover(); r != nil {
						s.panicked = r
					}
					done <- struct{}{}
				}()
				s.drain(b)
			}(s)
		}
		for ; running > 0; running-- {
			<-done
		}
		k.inWindow = false
		for _, s := range active {
			if p := s.panicked; p != nil {
				s.panicked = nil
				panic(p)
			}
		}
	}
	windowEnd := k.now
	for _, s := range active {
		k.fired += s.windowFired
		s.windowFired = 0
		if s.now > windowEnd {
			windowEnd = s.now
		}
	}
	// Route outboxes. Push order across shards is irrelevant: keys are
	// unique, so every heap pops in one deterministic order regardless
	// of insertion order.
	for _, s := range active {
		for i := range s.out {
			k.route(s.out[i])
			s.out[i] = event{}
		}
		s.out = s.out[:0]
	}
	k.runDefers(active)
	k.now = windowEnd
}

// drain executes the shard's events strictly before the bound. Runs on
// the shard's worker goroutine; touches only shard-owned and home-owned
// state.
func (s *kshard) drain(b bound) {
	for s.q.len() > 0 {
		if !b.admits(&s.q.heap[0]) {
			return
		}
		e := s.q.pop()
		s.now = e.at
		s.curAt, s.curDepth, s.curHome, s.curCnt = e.at, e.depth, e.home, e.cnt
		s.defIdx = 0
		s.windowFired++
		e.fn()
	}
}

// runDefers replays the window's deferred side effects in scheduling-key
// order with the clock pinned to each record's instant — the order and
// clock an inline sequential run produces.
func (k *Kernel) runDefers(active []*kshard) {
	buf := k.defBuf[:0]
	for _, s := range active {
		buf = append(buf, s.defs...)
		for i := range s.defs {
			s.defs[i] = deferred{}
		}
		s.defs = s.defs[:0]
	}
	if len(buf) == 0 {
		return
	}
	sort.Slice(buf, func(i, j int) bool {
		a, b := &buf[i], &buf[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.depth != b.depth {
			return a.depth < b.depth
		}
		if a.home != b.home {
			return a.home < b.home
		}
		if a.cnt != b.cnt {
			return a.cnt < b.cnt
		}
		return a.idx < b.idx
	})
	saved := k.now
	for i := range buf {
		// Replay with the deferring event's context, so the clock and
		// any same-instant scheduling from the closure match what an
		// inline sequential run would have produced.
		k.now = buf[i].at
		k.executing, k.curAt, k.curDepth = true, buf[i].at, buf[i].depth
		buf[i].fn()
		buf[i] = deferred{}
	}
	k.executing = false
	k.now = saved
	k.defBuf = buf[:0]
}
