package baseline

import (
	"reflect"
	"testing"

	"plasma/internal/sim"
)

// fakeKeyed is a pure in-memory KeyedApp: handoffs are recorded and applied
// instantly, so tests exercise the repartitioner's decisions without a
// simulated cluster underneath.
type fakeKeyed struct {
	owner  []int
	load   []int64
	execs  int
	moving map[int]bool

	handoffs []recordedHandoff
	resets   int
}

type recordedHandoff struct {
	keys     []int
	from, to int
}

func newFakeKeyed(execs int, owner []int, load []int64) *fakeKeyed {
	return &fakeKeyed{owner: owner, load: load, execs: execs, moving: map[int]bool{}}
}

func (f *fakeKeyed) NumKeys() int         { return len(f.owner) }
func (f *fakeKeyed) NumExecs() int        { return f.execs }
func (f *fakeKeyed) OwnerOf(key int) int  { return f.owner[key] }
func (f *fakeKeyed) LoadOf(key int) int64 { return f.load[key] }
func (f *fakeKeyed) Moving(key int) bool  { return f.moving[key] }
func (f *fakeKeyed) ResetLoads() {
	f.resets++
	for i := range f.load {
		f.load[i] = 0
	}
}
func (f *fakeKeyed) StartHandoff(keys []int, from, to int) {
	f.handoffs = append(f.handoffs, recordedHandoff{append([]int(nil), keys...), from, to})
	for _, k := range keys {
		f.owner[k] = to
	}
}

func elasticutorOn(app KeyedApp) *Elasticutor {
	e := &Elasticutor{App: app, SkewRatio: 1.5, MaxKeys: 256, MaxDests: 4}
	return e
}

func TestElasticutorNoTriggerWhenBalanced(t *testing.T) {
	// 4 executors, 8 keys, 10 load each: max == mean, no skew to fix.
	app := newFakeKeyed(4,
		[]int{0, 0, 1, 1, 2, 2, 3, 3},
		[]int64{10, 10, 10, 10, 10, 10, 10, 10})
	elasticutorOn(app).tick()
	if len(app.handoffs) != 0 {
		t.Fatalf("balanced load triggered handoffs: %v", app.handoffs)
	}
	if app.resets != 1 {
		t.Fatalf("tick must reset the period's counters exactly once, got %d", app.resets)
	}
}

func TestElasticutorPeelsHotKeysToColdestExecs(t *testing.T) {
	// Executor 0 holds the entire load; its hottest keys must peel off to
	// the (equally idle, so index-ordered) other executors, hottest first.
	app := newFakeKeyed(4,
		[]int{0, 0, 0, 0, 1, 2, 3, 3},
		[]int64{40, 30, 20, 10, 0, 0, 0, 0})
	elasticutorOn(app).tick()
	if len(app.handoffs) == 0 {
		t.Fatal("full skew onto one executor triggered no handoffs")
	}
	for _, h := range app.handoffs {
		if h.from != 0 {
			t.Fatalf("handoff sourced from executor %d, want the hot executor 0", h.from)
		}
		if h.to == 0 {
			t.Fatal("handoff sent keys back to the hot executor")
		}
	}
	// The hottest key (0, load 40) must be among the peeled keys.
	moved := map[int]bool{}
	for _, h := range app.handoffs {
		for _, k := range h.keys {
			moved[k] = true
		}
	}
	if !moved[0] {
		t.Fatalf("hottest key not peeled; moved=%v", moved)
	}
	// Projected source load must have re-entered the vicinity of the mean
	// (100 total / 4 execs = 25): peeling stops at or below it.
	var left int64
	for k, o := range app.owner {
		if o == 0 {
			left += []int64{40, 30, 20, 10, 0, 0, 0, 0}[k]
		}
	}
	if left > 40 {
		t.Fatalf("source kept %d load after repartitioning, want near the mean 25", left)
	}
}

func TestElasticutorHonorsMaxKeysAndMaxDests(t *testing.T) {
	// 16 equally hot keys all on executor 0 of 8; caps of 3 keys and 2
	// destinations bound the period's movement.
	owner := make([]int, 16)
	load := make([]int64, 16)
	for i := range load {
		load[i] = 10
	}
	app := newFakeKeyed(8, owner, load)
	e := elasticutorOn(app)
	e.MaxKeys, e.MaxDests = 3, 2
	e.tick()
	if e.KeysMoved > 3 {
		t.Fatalf("moved %d keys, cap is 3", e.KeysMoved)
	}
	dests := map[int]bool{}
	for _, h := range app.handoffs {
		dests[h.to] = true
	}
	if len(dests) > 2 {
		t.Fatalf("used %d destinations, cap is 2", len(dests))
	}
}

func TestElasticutorSkipsKeysAlreadyMoving(t *testing.T) {
	app := newFakeKeyed(2, []int{0, 0, 1, 1}, []int64{50, 40, 0, 0})
	app.moving[0] = true // the hottest key's handoff is already in flight
	elasticutorOn(app).tick()
	for _, h := range app.handoffs {
		for _, k := range h.keys {
			if k == 0 {
				t.Fatal("re-handed a key whose handoff is in flight")
			}
		}
	}
}

func TestElasticutorDeterministic(t *testing.T) {
	build := func() *fakeKeyed {
		owner := make([]int, 32)
		load := make([]int64, 32)
		for i := range owner {
			owner[i] = i % 4
		}
		// All heat on executor 0's keys, many ties — the tie-breaks must be
		// stable for the decision stream to be reproducible.
		for i := 0; i < 32; i += 4 {
			load[i] = 10
		}
		return newFakeKeyed(4, owner, load)
	}
	a, b := build(), build()
	elasticutorOn(a).tick()
	elasticutorOn(b).tick()
	if !reflect.DeepEqual(a.handoffs, b.handoffs) {
		t.Fatalf("identical inputs produced different handoffs:\n%v\nvs\n%v", a.handoffs, b.handoffs)
	}
}

func TestElasticutorPeriodicStartStop(t *testing.T) {
	k := sim.New(1)
	app := newFakeKeyed(2, []int{0, 0, 1, 1}, []int64{60, 30, 5, 5})
	e := &Elasticutor{K: k, App: app, Period: sim.Second}
	e.Start()
	k.Run(sim.Time(3 * sim.Second))
	if e.Handoffs == 0 {
		t.Fatal("periodic tick never repartitioned the skewed load")
	}
	if app.resets == 0 {
		t.Fatal("periodic tick never reset the load window")
	}
	e.Stop()
	before := app.resets
	k.Run(sim.Time(6 * sim.Second))
	if app.resets > before+1 {
		t.Fatalf("manager kept ticking after Stop (resets %d -> %d)", before, app.resets)
	}
}
