package baseline

import (
	"testing"

	"plasma/internal/actor"
	"plasma/internal/cluster"
	"plasma/internal/profile"
	"plasma/internal/sim"
)

type env struct {
	k    *sim.Kernel
	c    *cluster.Cluster
	rt   *actor.Runtime
	prof *profile.Profiler
}

func newEnv(machines int) *env {
	k := sim.New(1)
	typ := cluster.InstanceType{Name: "t", VCPUs: 1, MemMB: 4096, NetMbps: 1000, SpeedFac: 1}
	c := cluster.New(k, machines, typ)
	rt := actor.NewRuntime(k, c)
	prof := profile.New(k, c, rt)
	return &env{k, c, rt, prof}
}

func idle() actor.Behavior {
	return actor.BehaviorFunc(func(ctx *actor.Context, msg actor.Message) {})
}

func TestOrleansEqualizesCounts(t *testing.T) {
	e := newEnv(4)
	for i := 0; i < 12; i++ {
		e.rt.SpawnOn("A", idle(), 0)
	}
	o := &Orleans{K: e.k, RT: e.rt, C: e.c, Prof: e.prof, Period: sim.Second}
	o.Start()
	e.k.Run(sim.Time(5 * sim.Second))
	for i := 0; i < 4; i++ {
		n := len(e.rt.ActorsOn(cluster.MachineID(i)))
		if n < 2 || n > 4 {
			t.Fatalf("server %d holds %d actors, want ~3", i, n)
		}
	}
	if o.Migrations == 0 {
		t.Fatal("no migrations")
	}
}

func TestOrleansStableWhenEqual(t *testing.T) {
	e := newEnv(2)
	e.rt.SpawnOn("A", idle(), 0)
	e.rt.SpawnOn("A", idle(), 0)
	e.rt.SpawnOn("A", idle(), 1)
	e.rt.SpawnOn("A", idle(), 1)
	o := &Orleans{K: e.k, RT: e.rt, C: e.c, Prof: e.prof, Period: sim.Second}
	o.Start()
	e.k.Run(sim.Time(5 * sim.Second))
	if o.Migrations != 0 {
		t.Fatalf("migrations on balanced counts: %d", o.Migrations)
	}
}

func TestOrleansTypeFilter(t *testing.T) {
	e := newEnv(2)
	for i := 0; i < 6; i++ {
		e.rt.SpawnOn("Managed", idle(), 0)
	}
	for i := 0; i < 6; i++ {
		e.rt.SpawnOn("Unmanaged", idle(), 0)
	}
	o := &Orleans{K: e.k, RT: e.rt, C: e.c, Prof: e.prof, Period: sim.Second,
		Types: map[string]bool{"Managed": true}}
	o.Start()
	e.k.Run(sim.Time(5 * sim.Second))
	// Unmanaged actors stay put.
	unmanagedOn0 := 0
	for _, ref := range e.rt.ActorsOn(0) {
		if e.rt.TypeOf(ref) == "Unmanaged" {
			unmanagedOn0++
		}
	}
	if unmanagedOn0 != 6 {
		t.Fatalf("unmanaged actors moved: %d left on server 0", unmanagedOn0)
	}
}

func TestOrleansColocatesChattiestPair(t *testing.T) {
	e := newEnv(2)
	callee := e.rt.SpawnOn("B", idle(), 1)
	caller := e.rt.SpawnOn("A", actor.BehaviorFunc(func(ctx *actor.Context, msg actor.Message) {
		ctx.Use(sim.Millisecond)
		ctx.Send(callee, "chat", nil, 32)
		ctx.SendAfter(10*sim.Millisecond, ctx.Self(), "again", nil, 8)
	}), 0)
	// Equal counts on both servers so count balancing is a no-op.
	e.rt.SpawnOn("Filler", idle(), 1)
	actor.NewClient(e.rt, 0).Send(caller, "again", nil, 8)
	o := &Orleans{K: e.k, RT: e.rt, C: e.c, Prof: e.prof, Period: sim.Second, ColocateFrequent: true}
	o.Start()
	e.k.Run(sim.Time(3 * sim.Second))
	if e.rt.ServerOf(caller) != e.rt.ServerOf(callee) {
		t.Fatalf("chatty pair not colocated: %d vs %d", e.rt.ServerOf(caller), e.rt.ServerOf(callee))
	}
}

func TestHeavyMigratorMovesHotActor(t *testing.T) {
	e := newEnv(2)
	hot := e.rt.SpawnOn("H", actor.BehaviorFunc(func(ctx *actor.Context, msg actor.Message) {
		ctx.Use(60 * sim.Millisecond)
		ctx.SendAfter(10*sim.Millisecond, ctx.Self(), "w", nil, 8)
	}), 0)
	cold := e.rt.SpawnOn("C", idle(), 0)
	actor.NewClient(e.rt, 0).Send(hot, "w", nil, 8)
	h := &HeavyMigrator{K: e.k, RT: e.rt, C: e.c, Prof: e.prof, Period: sim.Second, TriggerCPU: 50}
	h.Start()
	e.k.Run(sim.Time(4 * sim.Second))
	if e.rt.ServerOf(hot) != 1 {
		t.Fatalf("hot actor on %d, want idle server 1", e.rt.ServerOf(hot))
	}
	if e.rt.ServerOf(cold) != 0 {
		t.Fatal("cold actor moved")
	}
}

func TestHeavyMigratorQuietBelowTrigger(t *testing.T) {
	e := newEnv(2)
	warm := e.rt.SpawnOn("W", actor.BehaviorFunc(func(ctx *actor.Context, msg actor.Message) {
		ctx.Use(10 * sim.Millisecond)
		ctx.SendAfter(90*sim.Millisecond, ctx.Self(), "w", nil, 8)
	}), 0)
	actor.NewClient(e.rt, 0).Send(warm, "w", nil, 8)
	h := &HeavyMigrator{K: e.k, RT: e.rt, C: e.c, Prof: e.prof, Period: sim.Second, TriggerCPU: 50}
	h.Start()
	e.k.Run(sim.Time(4 * sim.Second))
	if h.Migrations != 0 {
		t.Fatalf("migrations below trigger: %d", h.Migrations)
	}
}

func TestFreqColocatorChasesHeaviestEdge(t *testing.T) {
	e := newEnv(3)
	session := e.rt.SpawnOn("Session", idle(), 2)
	other := e.rt.SpawnOn("Session", idle(), 1)
	player := e.rt.SpawnOn("Player", actor.BehaviorFunc(func(ctx *actor.Context, msg actor.Message) {
		ctx.Use(sim.Millisecond)
		// Heavy traffic to session, light to other.
		ctx.Send(session, "hb", nil, 16)
		if ctx.Now()%3 == 0 {
			ctx.Send(other, "hb", nil, 16)
		}
		ctx.SendAfter(20*sim.Millisecond, ctx.Self(), "tick", nil, 8)
	}), 0)
	actor.NewClient(e.rt, 0).Send(player, "tick", nil, 8)
	f := &FreqColocator{K: e.k, RT: e.rt, C: e.c, Prof: e.prof, Period: sim.Second, Threshold: 5}
	f.Start()
	e.k.Run(sim.Time(3 * sim.Second))
	if e.rt.ServerOf(player) != 2 {
		t.Fatalf("player on %d, want chattiest peer's server 2", e.rt.ServerOf(player))
	}
}

func TestFreqColocatorRespectsThreshold(t *testing.T) {
	e := newEnv(2)
	callee := e.rt.SpawnOn("B", idle(), 1)
	caller := e.rt.SpawnOn("A", actor.BehaviorFunc(func(ctx *actor.Context, msg actor.Message) {
		ctx.Send(callee, "rare", nil, 8)
	}), 0)
	actor.NewClient(e.rt, 0).Send(caller, "go", nil, 8)
	f := &FreqColocator{K: e.k, RT: e.rt, C: e.c, Prof: e.prof, Period: sim.Second, Threshold: 100}
	f.Start()
	e.k.Run(sim.Time(3 * sim.Second))
	if f.Migrations != 0 {
		t.Fatalf("migrated below threshold: %d", f.Migrations)
	}
}
