package baseline

import (
	"sort"

	"plasma/internal/sim"
)

// KeyedApp is the view an executor-level repartitioner needs of a
// key-partitioned streaming job: a fixed executor fleet, a mutable
// key→executor table, per-key load counters over the current period, and a
// way to start a state handoff (whose cost the application models with the
// runtime's migration cost model — see streamagg).
type KeyedApp interface {
	NumKeys() int
	NumExecs() int
	OwnerOf(key int) int
	LoadOf(key int) int64
	ResetLoads()
	Moving(key int) bool
	StartHandoff(keys []int, from, to int)
}

// Elasticutor is the executor-level key-repartitioning baseline
// (Elasticutor, PAPERS.md): executors are pinned one per server and never
// migrate; instead, when one executor's load exceeds SkewRatio times the
// fleet mean, the manager peels that executor's hottest keys off and hands
// them to the least-loaded executors until its projected load re-enters
// the mean — bounded per period by MaxKeys keys and MaxDests destination
// batches, so a large shift converges over a few periods rather than
// stalling the pipeline behind one giant transfer.
type Elasticutor struct {
	K   *sim.Kernel
	App KeyedApp

	Period sim.Duration
	// SkewRatio triggers repartitioning when max executor load exceeds
	// SkewRatio × mean (default 1.5).
	SkewRatio float64
	// MaxKeys caps keys moved per period (default 256).
	MaxKeys int
	// MaxDests caps destination executors per period (default 4).
	MaxDests int

	// Handoffs counts initiated handoff batches; KeysMoved the keys in them.
	Handoffs  int
	KeysMoved int

	running bool
}

// Start schedules periodic skew detection.
func (e *Elasticutor) Start() {
	if e.running {
		return
	}
	e.running = true
	if e.SkewRatio == 0 {
		e.SkewRatio = 1.5
	}
	if e.MaxKeys == 0 {
		e.MaxKeys = 256
	}
	if e.MaxDests == 0 {
		e.MaxDests = 4
	}
	e.K.Every(e.Period, func() bool {
		if !e.running {
			return false
		}
		e.tick()
		return true
	})
}

// Stop halts management after the current period.
func (e *Elasticutor) Stop() { e.running = false }

func (e *Elasticutor) tick() {
	app := e.App
	defer app.ResetLoads()

	n, execs := app.NumKeys(), app.NumExecs()
	if execs < 2 {
		return
	}
	loads := make([]int64, execs)
	var total int64
	for key := 0; key < n; key++ {
		loads[app.OwnerOf(key)] += app.LoadOf(key)
		total += app.LoadOf(key)
	}
	if total == 0 {
		return
	}
	mean := float64(total) / float64(execs)
	src := 0
	for i := 1; i < execs; i++ {
		if loads[i] > loads[src] {
			src = i
		}
	}
	if float64(loads[src]) <= e.SkewRatio*mean {
		return
	}

	// The source's keys, hottest first (ties by key for determinism).
	type hotKey struct {
		key  int
		load int64
	}
	var cands []hotKey
	for key := 0; key < n; key++ {
		if app.OwnerOf(key) == src && !app.Moving(key) && app.LoadOf(key) > 0 {
			cands = append(cands, hotKey{key, app.LoadOf(key)})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].load != cands[j].load {
			return cands[i].load > cands[j].load
		}
		return cands[i].key < cands[j].key
	})

	// The MaxDests least-loaded executors receive the peeled keys; each key
	// goes to whichever destination is currently lightest (projected).
	type dest struct {
		exec int
		load int64
		keys []int
	}
	order := make([]int, 0, execs)
	for i := 0; i < execs; i++ {
		if i != src {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if loads[order[i]] != loads[order[j]] {
			return loads[order[i]] < loads[order[j]]
		}
		return order[i] < order[j]
	})
	if len(order) > e.MaxDests {
		order = order[:e.MaxDests]
	}
	dests := make([]*dest, len(order))
	for i, ex := range order {
		dests[i] = &dest{exec: ex, load: loads[ex]}
	}

	srcLoad := loads[src]
	moved := 0
	for _, c := range cands {
		if moved >= e.MaxKeys || float64(srcLoad) <= mean {
			break
		}
		d := dests[0]
		for _, cand := range dests[1:] {
			if cand.load < d.load {
				d = cand
			}
		}
		// Never overfill a destination past the mean with a key the source
		// could keep: if even the lightest destination would exceed the
		// source's projected load, moving stops helping.
		if float64(d.load)+float64(c.load) >= float64(srcLoad) {
			break
		}
		d.keys = append(d.keys, c.key)
		d.load += c.load
		srcLoad -= c.load
		moved++
	}
	for _, d := range dests {
		if len(d.keys) == 0 {
			continue
		}
		sort.Ints(d.keys)
		app.StartHandoff(d.keys, src, d.exec)
		e.Handoffs++
		e.KeysMoved += len(d.keys)
	}
}
