// Package baseline implements the non-PLASMA elasticity managers the paper
// compares against:
//
//   - Orleans-style management (§2.1, §5.4): equalize the number of actors
//     on each server, with optional colocation of actors that communicate
//     frequently;
//   - the "default rule" of §5.3 (Fig. 5): migrate actors with heavy
//     workload to an idle server, without application knowledge;
//   - the frequency-based colocation "default rule" of §5.7 (Fig. 11a):
//     co-locate actors that frequently interact with one another.
//
// The Mizan-style per-superstep vertex migrator lives with the PageRank
// application, since it operates below the actor level.
package baseline

import (
	"sort"

	"plasma/internal/actor"
	"plasma/internal/cluster"
	"plasma/internal/profile"
	"plasma/internal/sim"
)

// Orleans equalizes actor counts across servers each period, mimicking the
// paper's description of Orleans' elasticity management. When
// ColocateFrequent is set it additionally migrates each period's most
// chatty cross-server actor pair onto one server.
type Orleans struct {
	K    *sim.Kernel
	RT   *actor.Runtime
	C    *cluster.Cluster
	Prof *profile.Profiler

	Period           sim.Duration
	ColocateFrequent bool
	// Types restricts balancing to the listed actor types (nil = all).
	Types map[string]bool

	Migrations int
	running    bool
}

// Start schedules periodic management.
func (o *Orleans) Start() {
	if o.running {
		return
	}
	o.running = true
	o.K.Every(o.Period, func() bool {
		if !o.running {
			return false
		}
		o.tick()
		return true
	})
}

// Stop halts management after the current period.
func (o *Orleans) Stop() { o.running = false }

func (o *Orleans) covers(typ string) bool {
	return o.Types == nil || o.Types[typ]
}

func (o *Orleans) tick() {
	up := o.C.UpMachines()
	if len(up) < 2 {
		return
	}
	// Count managed actors per server.
	perSrv := map[cluster.MachineID][]actor.Ref{}
	total := 0
	for _, m := range up {
		for _, ref := range o.RT.ActorsOn(m.ID) {
			if o.covers(o.RT.TypeOf(ref)) {
				perSrv[m.ID] = append(perSrv[m.ID], ref)
				total++
			}
		}
	}
	target := total / len(up)
	// Move surplus actors from over-count servers to under-count ones.
	type srvCount struct {
		id cluster.MachineID
		n  int
	}
	var counts []srvCount
	for _, m := range up {
		counts = append(counts, srvCount{m.ID, len(perSrv[m.ID])})
	}
	sort.Slice(counts, func(i, j int) bool { return counts[i].n > counts[j].n })
	for i := 0; i < len(counts); i++ {
		src := &counts[i]
		for src.n > target+1 {
			dst := &counts[len(counts)-1]
			for j := len(counts) - 1; j > i; j-- {
				if counts[j].n < counts[len(counts)-1].n {
					dst = &counts[j]
				}
			}
			// Find the least-recently useful candidate: just the last one.
			cands := perSrv[src.id]
			moved := false
			for len(cands) > 0 {
				ref := cands[len(cands)-1]
				cands = cands[:len(cands)-1]
				if o.RT.Pinned(ref) {
					continue
				}
				o.RT.Migrate(ref, dst.id, nil)
				o.Migrations++
				moved = true
				break
			}
			perSrv[src.id] = cands
			if !moved {
				break
			}
			src.n--
			dst.n++
			sort.Slice(counts, func(i, j int) bool { return counts[i].n > counts[j].n })
		}
	}
	if o.ColocateFrequent {
		o.colocateChattiest()
	}
	o.Prof.Reset()
}

// colocateChattiest finds the cross-server (caller, callee) actor pair with
// the highest message count this window and moves the caller to the callee.
func (o *Orleans) colocateChattiest() {
	snap := o.Prof.Snapshot(nil)
	var bestCaller, bestCallee actor.Ref
	var bestCount int64
	for _, ai := range snap.Actors {
		for _, cs := range ai.Calls {
			if cs.Caller.Zero() {
				continue
			}
			callerSrv := o.RT.ServerOf(cs.Caller)
			if callerSrv < 0 || callerSrv == ai.Server {
				continue
			}
			if cs.Count > bestCount {
				bestCount = cs.Count
				bestCaller, bestCallee = cs.Caller, ai.Ref
			}
		}
	}
	if bestCount > 0 && !o.RT.Pinned(bestCaller) {
		o.RT.Migrate(bestCaller, o.RT.ServerOf(bestCallee), nil)
		o.Migrations++
	}
}

// HeavyMigrator is Fig. 5's def-rule: each period, migrate the actors with
// the heaviest CPU usage from the busiest server to the idlest one —
// without any application knowledge (so dependent actors stay behind).
type HeavyMigrator struct {
	K    *sim.Kernel
	RT   *actor.Runtime
	C    *cluster.Cluster
	Prof *profile.Profiler

	Period sim.Duration
	// TriggerCPU is the busy-server threshold (percent).
	TriggerCPU float64
	// MoveCount caps migrations per period.
	MoveCount int

	Migrations int
	running    bool
}

// Start schedules periodic management.
func (h *HeavyMigrator) Start() {
	if h.running {
		return
	}
	h.running = true
	if h.MoveCount == 0 {
		h.MoveCount = 1
	}
	h.K.Every(h.Period, func() bool {
		if !h.running {
			return false
		}
		h.tick()
		return true
	})
}

// Stop halts management after the current period.
func (h *HeavyMigrator) Stop() { h.running = false }

func (h *HeavyMigrator) tick() {
	snap := h.Prof.Snapshot(nil)
	h.Prof.Reset()
	if len(snap.Servers) < 2 {
		return
	}
	busiest, idlest := snap.Servers[0], snap.Servers[0]
	for _, s := range snap.Servers {
		if s.CPUPerc > busiest.CPUPerc {
			busiest = s
		}
		if s.CPUPerc < idlest.CPUPerc {
			idlest = s
		}
	}
	if busiest.CPUPerc < h.TriggerCPU || busiest.ID == idlest.ID {
		return
	}
	var cands []*struct {
		ref actor.Ref
		cpu float64
	}
	for _, ai := range snap.Actors {
		if ai.Server != busiest.ID || ai.Pinned {
			continue
		}
		cands = append(cands, &struct {
			ref actor.Ref
			cpu float64
		}{ai.Ref, ai.CPUPerc})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].cpu > cands[j].cpu })
	for i := 0; i < len(cands) && i < h.MoveCount; i++ {
		h.RT.Migrate(cands[i].ref, idlest.ID, nil)
		h.Migrations++
	}
}

// FreqColocator is Fig. 11a's def-rule: each period, for each actor, find
// the peer it exchanged the most messages with; if they sit on different
// servers and the count exceeds Threshold, migrate the caller to the
// callee's server. This is application-agnostic and can make poor choices
// (e.g. chasing a router that briefly sprays one session).
type FreqColocator struct {
	K    *sim.Kernel
	RT   *actor.Runtime
	C    *cluster.Cluster
	Prof *profile.Profiler

	Period    sim.Duration
	Threshold int64 // minimum per-window message count to act

	Migrations int
	running    bool
}

// Start schedules periodic management.
func (f *FreqColocator) Start() {
	if f.running {
		return
	}
	f.running = true
	f.K.Every(f.Period, func() bool {
		if !f.running {
			return false
		}
		f.tick()
		return true
	})
}

// Stop halts management after the current period.
func (f *FreqColocator) Stop() { f.running = false }

func (f *FreqColocator) tick() {
	snap := f.Prof.Snapshot(nil)
	f.Prof.Reset()
	// Strongest cross-server edge per caller.
	type edge struct {
		callee actor.Ref
		count  int64
	}
	best := map[actor.Ref]edge{}
	for _, ai := range snap.Actors {
		for _, cs := range ai.Calls {
			if cs.Caller.Zero() {
				continue
			}
			if cs.Count > best[cs.Caller].count {
				best[cs.Caller] = edge{callee: ai.Ref, count: cs.Count}
			}
		}
	}
	callers := make([]actor.Ref, 0, len(best))
	for c := range best {
		callers = append(callers, c)
	}
	sort.Slice(callers, func(i, j int) bool { return callers[i].ID < callers[j].ID })
	for _, caller := range callers {
		e := best[caller]
		if e.count < f.Threshold {
			continue
		}
		srcSrv := f.RT.ServerOf(caller)
		dstSrv := f.RT.ServerOf(e.callee)
		if srcSrv < 0 || dstSrv < 0 || srcSrv == dstSrv || f.RT.Pinned(caller) {
			continue
		}
		f.RT.Migrate(caller, dstSrv, nil)
		f.Migrations++
	}
}
